"""In-DRAM reserved task queue (Section VI-C, Fig. 9 right).

Tasks whose data block is resident in the hot-data sketch are parked here
instead of the main task queue so they can be lent out together with their
block.  Storage is organized as fixed-size chunks (``G_xfer`` bytes each):
every sketch entry owns an initial chunk; overflow chunks are allocated
dynamically and linked, with a 1-bit-per-chunk allocation bitmap.  When the
chunk pool is exhausted, new tasks fall back to the main queue -- the
bounded-SRAM behaviour the hardware would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.task import Task


@dataclass
class _BlockChain:
    """The chunk chain holding one block's reserved tasks."""

    chunks: int = 1                      # includes the statically owned chunk
    tasks: List[Task] = field(default_factory=list)
    workload: int = 0


class ReservedQueue:
    """Chunked, bitmap-allocated reserved task storage."""

    def __init__(
        self,
        total_chunks: int,
        chunk_bytes: int,
        static_chunks: int,
        avg_task_bytes: int = 32,
    ):
        if total_chunks <= 0 or chunk_bytes <= 0:
            raise ValueError("chunk pool geometry must be positive")
        if static_chunks > total_chunks:
            raise ValueError("static chunks exceed the pool")
        self.total_chunks = total_chunks
        self.chunk_bytes = chunk_bytes
        self.tasks_per_chunk = max(1, chunk_bytes // avg_task_bytes)
        # Chunks statically assigned to sketch entries are always "allocated".
        self.static_chunks = static_chunks
        self._free_dynamic = total_chunks - static_chunks
        self._chains: Dict[int, _BlockChain] = {}

    # -- capacity ----------------------------------------------------------
    @property
    def free_dynamic_chunks(self) -> int:
        return self._free_dynamic

    @property
    def total_tasks(self) -> int:
        return sum(len(c.tasks) for c in self._chains.values())

    @property
    def total_workload(self) -> int:
        return sum(c.workload for c in self._chains.values())

    def blocks(self) -> List[int]:
        return list(self._chains.keys())

    def tasks_of(self, block_id: int) -> List[Task]:
        chain = self._chains.get(block_id)
        return list(chain.tasks) if chain else []

    def workload_of(self, block_id: int) -> int:
        chain = self._chains.get(block_id)
        return chain.workload if chain else 0

    def task_count(self, block_id: int) -> int:
        chain = self._chains.get(block_id)
        return len(chain.tasks) if chain else 0

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._chains

    # -- mutation ----------------------------------------------------------
    def reserve(self, block_id: int, task: Task) -> bool:
        """Park ``task`` under its block's chain.

        Returns ``False`` (task must go to the main queue) when a new chunk
        would be needed and the dynamic pool is exhausted.
        """
        chain = self._chains.get(block_id)
        if chain is None:
            chain = _BlockChain()
            self._chains[block_id] = chain
        capacity = chain.chunks * self.tasks_per_chunk
        if len(chain.tasks) >= capacity:
            if self._free_dynamic <= 0:
                if not chain.tasks:
                    del self._chains[block_id]
                return False
            self._free_dynamic -= 1
            chain.chunks += 1
        chain.tasks.append(task)
        chain.workload += task.workload_estimate
        return True

    def _release_chunks(self, chain: _BlockChain) -> None:
        # The first chunk is the static one; only dynamic chunks return
        # to the pool.
        self._free_dynamic += max(0, chain.chunks - 1)

    def pop_one(self, block_id: int) -> Optional[Task]:
        """Dequeue a single task from a block's chain for local execution.

        Reserved tasks run with normal priority when not scheduled out;
        only their *grouping* is special.  Chunks are released as the
        chain shrinks.
        """
        chain = self._chains.get(block_id)
        if chain is None or not chain.tasks:
            return None
        task = chain.tasks.pop(0)
        chain.workload -= task.workload_estimate
        if (
            chain.chunks > 1
            and len(chain.tasks) <= (chain.chunks - 1) * self.tasks_per_chunk
        ):
            chain.chunks -= 1
            self._free_dynamic += 1
        if not chain.tasks:
            self._release_chunks(chain)
            del self._chains[block_id]
        return task

    def first_block(self) -> Optional[int]:
        """The oldest chain's block id, or None when empty."""
        for block_id, chain in self._chains.items():
            if chain.tasks:
                return block_id
        return None

    def oldest_block(self) -> Optional[int]:
        """The block whose head task arrived earliest (min task id)."""
        best_block = None
        best_id = None
        for block_id, chain in self._chains.items():
            if not chain.tasks:
                continue
            head_id = chain.tasks[0].task_id
            if best_id is None or head_id < best_id:
                best_id = head_id
                best_block = block_id
        return best_block

    def oldest_task_id(self) -> Optional[int]:
        block = self.oldest_block()
        if block is None:
            return None
        return self._chains[block].tasks[0].task_id

    def extract(self, block_id: int) -> List[Task]:
        """Remove and return all tasks of a block (being scheduled out)."""
        chain = self._chains.pop(block_id, None)
        if chain is None:
            return []
        self._release_chunks(chain)
        return chain.tasks

    def evict(self, block_id: int) -> List[Task]:
        """Entry fell out of the sketch: return its tasks to the caller
        (they re-enter the main task queue)."""
        return self.extract(block_id)
