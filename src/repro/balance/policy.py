"""Data-transfer-aware scheduling policy (Section VI-C).

The policy runs inside a bridge.  Given load snapshots of its children it
decides who receives work (receivers), who gives it (givers), and how much
(budgets).  Three orthogonal optimizations distinguish full NDPBridge (O)
from traditional work stealing (W):

* ``advance_trigger`` (+Adv, *hiding transfer latency*): a child becomes a
  receiver when its remaining workload drops below
  ``W_th = 2 * G_xfer * S_exe / S_xfer`` instead of when its queue empties,
  so the transfer overlaps the tail of its current work.
* ``fine_grained`` (+Fine, *avoiding transfer congestion*): receivers ask
  for a small budget (a multiple of ``W_th``) instead of half the victim's
  queue, and the ``toArrive`` correction counts workload already assigned
  but still in flight.
* ``hot_selection`` (+Hot, *reducing transfer traffic*): implemented on the
  giver side (see :mod:`repro.ndp.unit`); the policy itself is unchanged.

With all three disabled and ``workload_correction`` on, the policy is the
paper's W baseline: steal-on-empty, half the victim queue, random victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import BalanceConfig
from ..sim import DeterministicRNG


@dataclass
class ChildLoad:
    """One child's load snapshot as seen by its parent bridge."""

    child_id: int
    queue_workload: int
    to_arrive: int = 0

    @property
    def corrected_workload(self) -> int:
        return self.queue_workload + self.to_arrive


@dataclass
class SchedulePlan:
    """One SCHEDULE command: a giver, its budget, and the receivers."""

    giver: int
    budget: int
    receivers: List[Tuple[int, int]] = field(default_factory=list)


class SchedulingPolicy:
    """Receiver/giver matching and budget computation."""

    #: A giver must have at least this many W_th of work beyond what a
    #: receiver would be topped up to, so stealing never creates a new
    #: straggler out of the victim.
    GIVER_MARGIN = 2.0

    def __init__(self, config: BalanceConfig, rng: DeterministicRNG):
        self.config = config
        self.rng = rng

    # ------------------------------------------------------------------
    def w_th(self, g_xfer_bytes: int, s_exe: float, s_xfer: float) -> int:
        """Threshold workload for in-advance scheduling (Section VI-C).

        ``s_exe`` is workload units executed per cycle, ``s_xfer`` bytes
        transferred per cycle between units and the bridge.  The factor of
        2 accounts for the two hops (giver -> bridge -> receiver).
        """
        if s_xfer <= 0:
            raise ValueError("transfer speed must be positive")
        return max(1, int(2.0 * g_xfer_bytes * s_exe / s_xfer))

    # ------------------------------------------------------------------
    def _needs_work(self, load: ChildLoad, w_th: int) -> bool:
        w = (
            load.corrected_workload
            if self.config.workload_correction
            else load.queue_workload
        )
        if self.config.advance_trigger:
            return w < w_th
        return w == 0

    def _required(
        self, load: ChildLoad, w_th: int, target: int
    ) -> Optional[int]:
        """Workload a receiver asks for; None => classic half-of-victim."""
        if not self.config.fine_grained:
            return None
        return max(1, target - load.corrected_workload)

    def plan(
        self,
        loads: Sequence[ChildLoad],
        w_th: int,
        target: Optional[int] = None,
    ) -> List[SchedulePlan]:
        """Match receivers to givers; returns one plan per chosen giver.

        ``target`` is the workload a receiver should be topped up to --
        enough to keep it busy until the next load-balancing round
        (Section VI-C).  Defaults to ``budget_w_th_multiple * w_th``.
        """
        if target is None:
            target = int(self.config.budget_w_th_multiple * w_th)
        receivers = [l for l in loads if self._needs_work(l, w_th)]
        if not receivers:
            return []
        min_giver_workload = max(
            1, int(self.GIVER_MARGIN * w_th), target
        ) if self.config.fine_grained else 1
        givers = [
            l for l in loads
            if l.queue_workload >= min_giver_workload
            and not self._needs_work(l, w_th)
        ]
        if not givers:
            return []

        plans: Dict[int, SchedulePlan] = {}
        remaining_capacity = {g.child_id: g.queue_workload for g in givers}
        for receiver in receivers:
            required = self._required(receiver, w_th, target)
            candidates = [
                g for g in givers if remaining_capacity[g.child_id] > 0
            ]
            if not candidates:
                break
            chosen = self.rng.sample(
                candidates,
                min(self.config.max_givers_per_receiver, len(candidates)),
            )
            if required is None:
                # Classic work stealing: half of one victim's queue.
                victim = chosen[0]
                amount = max(
                    1,
                    int(self.config.steal_fraction * victim.queue_workload),
                )
                amount = min(amount, remaining_capacity[victim.child_id])
                if amount <= 0:
                    continue
                self._add(plans, victim.child_id, receiver.child_id, amount)
                remaining_capacity[victim.child_id] -= amount
            else:
                share = max(1, required // len(chosen))
                for giver in chosen:
                    amount = min(share, remaining_capacity[giver.child_id])
                    if amount <= 0:
                        continue
                    self._add(plans, giver.child_id, receiver.child_id, amount)
                    remaining_capacity[giver.child_id] -= amount
        return list(plans.values())

    @staticmethod
    def _add(
        plans: Dict[int, SchedulePlan], giver: int, receiver: int, amount: int
    ) -> None:
        plan = plans.get(giver)
        if plan is None:
            plan = plans[giver] = SchedulePlan(giver=giver, budget=0)
        plan.budget += amount
        plan.receivers.append((receiver, amount))
