"""Hot-data sketch (Section VI-C).

A simplified HeavyGuardian [79]: a set-associative buffer of
``(block address, workload counter)`` entries.  When a task on block ``x``
with workload ``w`` arrives:

* hit  -> add ``w`` to the entry (saturating at the counter width);
* miss with free space -> insert ``(x, w)``;
* miss, bucket full -> with probability ``b ** -e_min.workload`` decay the
  bucket's minimum entry by ``w``; if its counter drops below zero the
  entry is replaced by ``(x, w)``.

``b = 1.08`` per the HeavyGuardian analysis the paper cites.  Unlike full
HeavyGuardian there is no cold-item stage -- the paper explicitly drops it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..config import SketchConfig
from ..sim import DeterministicRNG


@dataclass
class SketchEntry:
    block_id: int
    workload: int


@dataclass(frozen=True)
class ObserveResult:
    """Outcome of one sketch observation.

    ``resident`` -- the observed block now has a sketch entry (so its task
    belongs in the reserved queue).  ``evicted_block`` -- a previously
    resident block that was replaced; its reserved tasks must return to the
    main task queue.
    """

    resident: bool
    evicted_block: Optional[int] = None


class HotDataSketch:
    """Approximate top-hot-block tracker, one per NDP unit."""

    def __init__(self, config: SketchConfig, rng: DeterministicRNG):
        self.config = config
        self.rng = rng
        self._buckets: List[Dict[int, SketchEntry]] = [
            {} for _ in range(config.buckets)
        ]
        self.observations = 0
        self.decays = 0
        self.replacements = 0

    def _bucket_of(self, block_id: int) -> Dict[int, SketchEntry]:
        return self._buckets[block_id % self.config.buckets]

    def observe(self, block_id: int, workload: int) -> ObserveResult:
        """Record a task's workload against its block.

        Returns an :class:`ObserveResult`; ``resident`` is ``True`` when
        the block now has a sketch entry (the caller should steer the task
        into the reserved queue), and ``evicted_block`` names a replaced
        entry whose reserved tasks must be released.
        """
        if workload <= 0:
            raise ValueError("workload must be positive")
        self.observations += 1
        bucket = self._bucket_of(block_id)
        entry = bucket.get(block_id)
        cmax = self.config.counter_max
        if entry is not None:
            entry.workload = min(cmax, entry.workload + workload)
            return ObserveResult(True)
        if len(bucket) < self.config.entries_per_bucket:
            bucket[block_id] = SketchEntry(block_id, min(cmax, workload))
            return ObserveResult(True)
        # Bucket full: probabilistic decay of the minimum entry.
        e_min = min(bucket.values(), key=lambda e: (e.workload, e.block_id))
        decay_prob = self.config.decay_base ** (-e_min.workload)
        if self.rng.random() < decay_prob:
            self.decays += 1
            e_min.workload -= workload
            if e_min.workload < 0:
                evicted = e_min.block_id
                del bucket[evicted]
                bucket[block_id] = SketchEntry(block_id, min(cmax, workload))
                self.replacements += 1
                return ObserveResult(True, evicted_block=evicted)
        return ObserveResult(False)

    def contains(self, block_id: int) -> bool:
        return block_id in self._bucket_of(block_id)

    def workload_of(self, block_id: int) -> int:
        entry = self._bucket_of(block_id).get(block_id)
        return entry.workload if entry else 0

    def hottest(self) -> Optional[SketchEntry]:
        """The entry with the largest tracked workload, or None if empty."""
        best: Optional[SketchEntry] = None
        for bucket in self._buckets:
            for entry in bucket.values():
                if best is None or (entry.workload, -entry.block_id) > (
                    best.workload, -best.block_id
                ):
                    best = entry
        return best

    def remove(self, block_id: int) -> Optional[SketchEntry]:
        return self._bucket_of(block_id).pop(block_id, None)

    def entries(self) -> Iterator[SketchEntry]:
        for bucket in self._buckets:
            yield from bucket.values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    @property
    def sram_bytes(self) -> int:
        """Sketch SRAM footprint: address + counter per entry."""
        entry_bytes = 8 + self.config.counter_bytes  # 58-bit addr padded
        return self.config.buckets * self.config.entries_per_bucket * entry_bytes
