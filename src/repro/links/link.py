"""Bandwidth-limited link model.

Links are the second kind of shared resource (after banks).  A link has a
fixed bandwidth in bytes per NDP-core cycle and a busy horizon; transfers
serialize on it.  Three link classes exist in the system:

* the per-chip 8-bit DQ slice between a bank group and the level-1 bridge
  (one per chip, shared by the chip's banks),
* the 64-bit channel between level-1 bridges and the level-2 bridge/host
  (one per channel, shared by the channel's ranks),
* the chip-internal bus used by RowClone transfers in design R.
"""

from __future__ import annotations

import math

from ..sim import Simulator, StatsRegistry


def transfer_cycles_for(
    bytes_per_cycle: float, nbytes: int, fixed_latency: int = 0
) -> int:
    """Serialization time of ``nbytes`` on a link of the given bandwidth.

    Module-level so code that has no :class:`Link` instance (the sharded
    partition planner, which must bound cross-shard latency *before* any
    shard builds its fabric) computes byte-identical timings to the live
    link model.
    """
    if bytes_per_cycle <= 0:
        raise ValueError("link bandwidth must be positive")
    return fixed_latency + max(1, math.ceil(nbytes / bytes_per_cycle))


def min_message_latency(
    bytes_per_cycle: float, message_bytes: int, fixed_latency: int = 0
) -> int:
    """Lower bound on any transfer's latency on such a link.

    Every fabric message is framed to at least ``message_bytes`` (the
    64 B wire format), so this is the minimum per-link latency -- the
    quantity conservative-window synchronization uses as its lookahead
    bound: no cross-shard message can arrive sooner than the sum of the
    minimum latencies of the links it crosses.
    """
    return transfer_cycles_for(bytes_per_cycle, max(1, message_bytes), fixed_latency)


class Link:
    """A serializing, bandwidth-limited transfer resource."""

    def __init__(
        self,
        sim: Simulator,
        stats: StatsRegistry,
        name: str,
        bytes_per_cycle: float,
        fixed_latency: int = 0,
    ):
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.fixed_latency = fixed_latency
        self.busy_until = 0
        self._bytes = stats.counter(name, "bytes")
        self._transfers = stats.counter(name, "transfers")
        self._busy_cycles = stats.counter(name, "busy_cycles")

    def transfer_cycles(self, nbytes: int) -> int:
        """Pure serialization time for ``nbytes`` on this link."""
        return transfer_cycles_for(self.bytes_per_cycle, nbytes, self.fixed_latency)

    @property
    def min_latency(self) -> int:
        """Smallest possible transfer latency (one byte) on this link.

        The per-link lookahead bound for conservative synchronization;
        see :func:`min_message_latency` for the framed-message variant.
        """
        return transfer_cycles_for(self.bytes_per_cycle, 1, self.fixed_latency)

    def transfer(self, now: int, nbytes: int) -> int:
        """Reserve the link for ``nbytes`` starting no earlier than ``now``.

        Returns the finish time.  The link is busy from
        ``max(now, busy_until)`` to the returned time.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        start = max(now, self.busy_until)
        duration = self.transfer_cycles(nbytes)
        finish = start + duration
        self.busy_until = finish
        self._bytes.add(nbytes)
        self._transfers.add()
        self._busy_cycles.add(duration)
        return finish

    def occupy_until(self, finish: int, nbytes: int) -> None:
        """Mark the link busy through ``finish`` for an externally timed
        transfer (e.g. one whose duration was computed jointly with a bank
        access).  Only extends the horizon; never shortens it."""
        if nbytes < 0:
            raise ValueError("occupied bytes must be non-negative")
        if finish > self.busy_until:
            newly_busy = finish - self.busy_until
            self._busy_cycles.add(
                min(newly_busy, self.transfer_cycles(max(1, nbytes)))
            )
            self.busy_until = finish
        self._bytes.add(nbytes)
        self._transfers.add()

    @property
    def total_bytes(self) -> int:
        return self._bytes.value

    @property
    def total_busy_cycles(self) -> int:
        return self._busy_cycles.value

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the link spent transferring."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_cycles.value / elapsed)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Link({self.name}, {self.bytes_per_cycle:.2f} B/cyc)"
