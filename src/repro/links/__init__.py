"""Interconnect link models."""

from .link import Link

__all__ = ["Link"]
