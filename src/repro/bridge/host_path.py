"""Host-CPU message forwarding (design C, Table II).

The baseline execution model of commercial DRAM-bank NDP products: any
cross-unit message travels unit -> host CPU -> unit over the ordinary DDR
channels.  The host polls the units' in-DRAM mailbox regions periodically,
routes every message in software (a per-message overhead on one host
thread), and writes messages into the destination banks.

All of this traffic crosses the bandwidth-limited channels twice, which is
precisely the inefficiency Fig. 2 quantifies.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from ..config import SystemConfig
from ..links import Link
from ..messages import DataMessage, Message, TaskMessage
from ..ndp.unit import NDPUnit
from ..sim import Simulator, StatsRegistry

#: In-bank offsets of the mailbox / task-queue regions (top of the bank).
MAILBOX_REGION_OFFSET = 62 * 1024 * 1024
SCATTER_REGION_OFFSET = 63 * 1024 * 1024

#: Host accesses to per-bank data pay a transposition/packing penalty: the
#: data of one bank interleaves across the chip's burst format, so useful
#: bytes move at a fraction of link peak (UPMEM's host<->DPU transfers
#: reach well under a quarter of channel bandwidth in the PrIM study the
#: paper builds on).  Bridges avoid this entirely -- they consume the
#: per-chip slices natively.
HOST_ACCESS_INEFFICIENCY = 4.0


class HostForwardingFabric:
    """Design C: the host CPU is the only cross-unit message path."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        system: "object",
    ):
        self.sim = sim
        self.config = config
        self.system = system
        topo = config.topology
        self.channel_links: List[Link] = [
            Link(sim, stats, f"host.ch{c}", config.channel_bytes_per_cycle)
            for c in range(topo.channels)
        ]
        # One DQ-slice link per (rank, chip): host reads stripe through
        # the same per-chip pins the bridge design uses.
        self.chip_links: Dict[int, List[Link]] = {}
        for rank in range(topo.ranks):
            self.chip_links[rank] = [
                Link(
                    sim, stats, f"host.r{rank}.chip{c}",
                    config.chip_link_bytes_per_cycle,
                )
                for c in range(topo.chips_per_rank)
            ]
        # Forwarding is parallelized across a few host threads (the rest
        # of the cores run the application/runtime side).
        n_threads = max(1, config.host.cores // 4)
        self._thread_busy = [0] * n_threads
        self._stat_polls = stats.counter("host", "polls")
        self._stat_forwarded = stats.counter("host", "messages_forwarded")

    # -- fabric interface ----------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(
            self.config.comm.host_poll_interval_cycles, self._poll
        )

    def notify_enqueue(self, unit: NDPUnit) -> None:
        """The host polls blindly; no reaction to mailbox activity."""

    def try_direct(self, unit: NDPUnit, msg: Message) -> bool:
        return False

    # -- polling loop ----------------------------------------------------
    def _poll(self) -> None:
        if self.system.tracker.finished:
            return
        self._stat_polls.add()
        topo = self.config.topology
        t0 = self.sim.now
        for unit in self.system.units:
            if unit.mailbox.is_empty():
                continue
            coord = self.system.addr_map.coord_of_unit(unit.unit_id)
            rank = self.system.addr_map.rank_of_unit(unit.unit_id)
            chip_link = self.chip_links[rank][coord.chip]
            channel_link = self.channel_links[coord.channel]
            msgs = unit.mailbox.drain_all()
            nbytes = sum(m.wire_bytes for m in msgs)
            wire_bytes = int(nbytes * HOST_ACCESS_INEFFICIENCY)
            start = max(t0, chip_link.busy_until)
            acc = unit.bank.access(
                start, MAILBOX_REGION_OFFSET, wire_bytes,
                is_write=False,
                bytes_per_cycle=chip_link.bytes_per_cycle,
                from_bridge=True,
            )
            chip_link.occupy_until(acc.finish, wire_bytes)
            chan_finish = channel_link.transfer(acc.finish, wire_bytes)
            overhead = (
                self.config.comm.host_per_message_overhead_cycles * len(msgs)
            )
            # One unit's batch is handled by the least-loaded thread.
            tid = min(range(len(self._thread_busy)),
                      key=lambda i: self._thread_busy[i])
            proc_start = max(chan_finish, self._thread_busy[tid])
            proc_finish = proc_start + overhead
            self._thread_busy[tid] = proc_finish
            self._stat_forwarded.add(len(msgs))
            self.sim.schedule_at(
                acc.finish, lambda u=unit: u.on_mailbox_drained()
            )
            self.sim.schedule_at(
                proc_finish, lambda m=msgs: self._scatter(m)
            )
        self.sim.schedule(
            self.config.comm.host_poll_interval_cycles, self._poll
        )

    def _scatter(self, msgs: Sequence[Message]) -> None:
        """Write forwarded messages into their destination banks."""
        by_dst: Dict[int, List[Message]] = defaultdict(list)
        for msg in msgs:
            dst = msg.dst_unit
            if dst is None:
                dst = self.system.addr_map.unit_of_addr(
                    msg.task.data_addr if isinstance(msg, TaskMessage)
                    else msg.block_id * self.config.comm.g_xfer_bytes
                )
            by_dst[dst].append(msg)
        t0 = self.sim.now
        for dst, group in by_dst.items():
            unit = self.system.units[dst]
            coord = self.system.addr_map.coord_of_unit(dst)
            rank = self.system.addr_map.rank_of_unit(dst)
            chip_link = self.chip_links[rank][coord.chip]
            channel_link = self.channel_links[coord.channel]
            nbytes = sum(m.wire_bytes for m in group)
            wire_bytes = int(nbytes * HOST_ACCESS_INEFFICIENCY)
            chan_finish = channel_link.transfer(t0, wire_bytes)
            start = max(chan_finish, chip_link.busy_until)
            acc = unit.bank.access(
                start, SCATTER_REGION_OFFSET, wire_bytes,
                is_write=True,
                bytes_per_cycle=chip_link.bytes_per_cycle,
                from_bridge=True,
            )
            chip_link.occupy_until(acc.finish, wire_bytes)
            self.sim.schedule_at(
                acc.finish, lambda u=unit, g=group: self._deliver(u, g)
            )

    @staticmethod
    def _deliver(unit: NDPUnit, msgs: Sequence[Message]) -> None:
        for msg in msgs:
            if isinstance(msg, DataMessage):
                unit.deliver_data_message(msg)
            else:
                unit.deliver_task_message(msg)
