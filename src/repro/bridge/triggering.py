"""Dynamic communication triggering (Section V-C).

The parent bridge decides when to run a message gather/scatter round:

* a child whose mailbox is empty is never gathered;
* if any child's ``L_mailbox`` reaches ``G_xfer``, gather immediately
  (bandwidth will be fully used);
* otherwise gather only if some child is idle, at most every ``I_min``
  (the duration of one full round) -- prompt delivery for idle units;
* messages already inside the bridge (scatter/backup buffers) also demand
  a round, since only rounds drain them.

``FIXED`` mode gathers unconditionally every ``I_min`` and ``FIXED_2X``
every ``2 * I_min`` -- the Fig. 14(b) comparison points.
"""

from __future__ import annotations

from typing import Sequence

from ..config import CommConfig, TriggerMode


class CommTrigger:
    """Decides whether to start a gather/scatter round now."""

    def __init__(self, config: CommConfig):
        self.config = config

    def should_start_round(
        self,
        now: int,
        last_round_end: int,
        i_min: int,
        mailbox_lens: Sequence[int],
        any_idle_child: bool,
        internal_pending: bool,
    ) -> bool:
        elapsed = now - last_round_end
        mode = self.config.trigger_mode
        if mode is TriggerMode.FIXED:
            return elapsed >= i_min
        if mode is TriggerMode.FIXED_2X:
            return elapsed >= 2 * i_min
        # Dynamic triggering.
        g_xfer = self.config.g_xfer_bytes
        if any(l >= g_xfer for l in mailbox_lens):
            return True
        have_traffic = internal_pending or any(l > 0 for l in mailbox_lens)
        if not have_traffic:
            return False
        if internal_pending and elapsed >= i_min:
            return True
        return any_idle_child and elapsed >= i_min

    def gathers_empty_children(self) -> bool:
        """Fixed modes issue GATHERs blindly (the wasted-energy source)."""
        return self.config.trigger_mode is not TriggerMode.DYNAMIC
