"""Level-1 (rank) bridge (Section V, Fig. 4(a)).

One bridge lives in each rank's DIMM buffer chip.  It owns, per child bank,
a 1 kB scatter buffer; a shared backup buffer; a mailbox region for
messages headed to the level-2 bridge; the message router; the command
generator (STATE-GATHER / GATHER / SCATTER / SCHEDULE encoded as reserved-
address DDR commands); and the rank-level ``dataBorrowed`` table for load
balancing.

Timing model: all chips of the rank share the C/A bus, so one command
reaches the same bank index of every chip simultaneously, each chip
answering over its own DQ slice (the memory-level-parallelism optimization
of Section V-B).  A round therefore walks bank indices; per chip, the DQ
link serializes that chip's transfers, and each transfer also reserves the
target bank through its access arbiter.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..balance.metadata import DataBorrowedTable
from ..balance.policy import ChildLoad, SchedulePlan, SchedulingPolicy
from ..config import SystemConfig
from ..dram.commands import BridgeOp, CommandCodec
from ..links import Link
from ..messages import DataMessage, Message, MessageBuffer, TaskMessage
from ..ndp.unit import NDPUnit, UnitState
from ..sim import DeterministicRNG, Simulator, StatsRegistry

#: Sentinel receiver: the bundle leaves the rank via the level-2 bridge.
UP = -1

#: C/A command issue latency (cycles) for SCHEDULE and friends.
COMMAND_LATENCY = 4

#: In-bank offsets of the controller-managed regions (top of the bank).
MAILBOX_REGION_OFFSET = 62 * 1024 * 1024
SCATTER_REGION_OFFSET = 63 * 1024 * 1024


@dataclass
class _Assignment:
    """Planned receiver for a giver's upcoming bundles."""

    receiver: int           # unit id, or UP for cross-rank
    remaining: int
    issued_at: int


class Level1Bridge:
    """Rank-level bridge coordinating the 64 banks beneath it."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        system: "object",
        global_rank: int,
        rng: DeterministicRNG,
    ):
        self.sim = sim
        self.config = config
        self.system = system
        self.global_rank = global_rank
        self.rng = rng
        topo = config.topology

        unit_ids = list(system.addr_map.units_in_rank(global_rank))
        self.units: List[NDPUnit] = [system.units[i] for i in unit_ids]
        self._unit_ids = set(unit_ids)
        # First unit id of this rank; unit ids need not start at
        # rank * banks_per_rank when the system is a shard of a larger
        # machine (the shard's address map rebases the hierarchy).
        self._unit_base = unit_ids[0] if unit_ids else 0
        scope = f"bridge{global_rank}"
        self.chip_links: List[Link] = [
            Link(
                sim, stats, f"{scope}.chip{c}",
                config.chip_link_bytes_per_cycle,
            )
            for c in range(topo.chips_per_rank)
        ]
        self.scatter_buffers: Dict[int, MessageBuffer] = {
            uid: MessageBuffer(
                f"{scope}.scatter{uid}",
                config.bridge.scatter_buffer_bytes_per_bank,
            )
            for uid in unit_ids
        }
        # Backup buffer (shared SRAM absorbing scatter-buffer overflow).
        # Organized per destination: only per-destination FIFO order is
        # architecturally meaningful (data block before its tasks), and it
        # makes draining O(moved) instead of O(buffered).
        self._backup: Dict[int, Deque[Message]] = {}
        self._backup_bytes = 0
        self.backup_capacity = config.bridge.backup_buffer_bytes
        self.up_mailbox = MessageBuffer(
            f"{scope}.mailbox", config.bridge.mailbox_bytes
        )
        self.borrowed = DataBorrowedTable(
            config.bridge.databorrowed_bytes,
            config.bridge.databorrowed_ways,
            config.balance.metadata_scale,
        )
        self.policy: Optional[SchedulingPolicy] = None
        if config.balance.enabled:
            self.policy = SchedulingPolicy(
                config.balance, rng.substream("policy")
            )
        from .triggering import CommTrigger

        self.trigger = CommTrigger(config.comm)
        self.codec = CommandCodec()

        self.pending_assign: Dict[int, Deque[_Assignment]] = {}
        #: Blocks the level-2 bridge recalled before we saw their lend.
        self.pending_recall_blocks: set = set()
        #: Units with (possibly) non-empty mailboxes / scatter buffers, so
        #: rounds and trigger checks touch only active children.
        self._mail_pending: set = set()
        self._scatter_pending: set = set()
        self.inflight_to: Dict[int, int] = {uid: 0 for uid in unit_ids}
        self.up_blocks: set = set()
        self.last_snapshot: Dict[int, UnitState] = {}
        #: Set by the fabric to nudge the level-2 bridge on upward traffic.
        self.on_up_push = None
        self.last_round_end = 0
        self.last_round_duration = 0
        self._round_active = False
        self._recheck_scheduled = False
        self.all_idle = False
        self.i_min = self._analytic_i_min()

        self._stat_rounds = stats.counter(scope, "message_rounds")
        self._stat_state_rounds = stats.counter(scope, "state_rounds")
        self._stat_wasted_gathers = stats.counter(scope, "wasted_gathers")
        self._stat_schedules = stats.counter(scope, "schedule_commands")
        self._stat_routed_up = stats.counter(scope, "messages_routed_up")
        self._stat_routed_local = stats.counter(scope, "messages_routed_local")
        self._stat_backup_overflow = stats.counter(scope, "backup_overflows")
        self._stat_sram = stats.counter(scope, "sram_accesses")

    # ------------------------------------------------------------------
    # derived timing
    # ------------------------------------------------------------------
    def _analytic_i_min(self) -> int:
        """Time for one full gather+scatter round across all children."""
        cfg = self.config
        per_xfer = (
            cfg.t_rcd_cycles + cfg.t_cas_cycles
            + math.ceil(cfg.comm.g_xfer_bytes / cfg.chip_link_bytes_per_cycle)
        )
        return 2 * cfg.topology.banks_per_chip * per_xfer

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.config.comm.i_state_cycles, self._state_round)

    def _finished(self) -> bool:
        return self.system.tracker.finished

    def _unit_at(self, chip: int, bank: int) -> NDPUnit:
        return self.units[chip * self.config.topology.banks_per_chip + bank]

    def _link_of(self, unit_id: int) -> Link:
        """The DQ-slice link of the chip holding ``unit_id``'s bank."""
        topo = self.config.topology
        local = unit_id - self._unit_base
        return self.chip_links[local // topo.banks_per_chip]

    # ------------------------------------------------------------------
    # state gathering (STATE-GATHER every I_state cycles)
    # ------------------------------------------------------------------
    def _state_round(self) -> None:
        if self._finished():
            return
        cfg = self.config
        per_msg = math.ceil(64 / cfg.chip_link_bytes_per_cycle)
        duration = cfg.topology.banks_per_chip * per_msg
        for link in self.chip_links:
            link.occupy_until(
                max(self.sim.now, link.busy_until) + duration,
                cfg.topology.banks_per_chip * 64,
            )
        self._stat_state_rounds.add()
        self.sim.schedule(duration, self._state_round_done)
        self.sim.schedule(cfg.comm.i_state_cycles, self._state_round)

    def _state_round_done(self) -> None:
        if self._finished():
            return
        for u in self.units:
            u.retry_parked()
        self.last_snapshot = {
            u.unit_id: u.collect_state() for u in self.units
        }
        self.all_idle = all(s.idle for s in self.last_snapshot.values())
        self._expire_assignments()
        if self.policy is not None:
            self._run_load_balancing()
        self._maybe_start_round()

    # ------------------------------------------------------------------
    # load balancing (Section VI-A workflow, steps 1-5)
    # ------------------------------------------------------------------
    def _speeds(self) -> tuple:
        """(S_exe, S_xfer) estimates from gathered state (Section VI-C).

        ``S_exe`` is the workload retired per *busy* cycle: the speed at
        which a unit chews through queued work while it has any.  Using
        wall-clock-amortized speed instead would shrink W_th on idle
        systems and starve receivers.
        """
        total_finished = sum(
            s.finished_workload for s in self.last_snapshot.values()
        )
        total_busy = sum(s.busy_cycles for s in self.last_snapshot.values())
        if total_busy > 0:
            s_exe = max(1e-6, total_finished / total_busy)
        else:
            s_exe = 0.5
        s_xfer = self.config.chip_link_bytes_per_cycle
        return s_exe, s_xfer

    def to_arrive(self, unit_id: int) -> int:
        pending = sum(
            a.remaining
            for q in self.pending_assign.values()
            for a in q
            if a.receiver == unit_id
        )
        return pending + self.inflight_to.get(unit_id, 0)

    def child_loads(self) -> List[ChildLoad]:
        return [
            ChildLoad(
                child_id=uid,
                queue_workload=s.queue_workload,
                to_arrive=self.to_arrive(uid),
            )
            for uid, s in self.last_snapshot.items()
        ]

    def w_th(self) -> int:
        s_exe, s_xfer = self._speeds()
        return self.policy.w_th(self.config.comm.g_xfer_bytes, s_exe, s_xfer)

    def receiver_target(self) -> int:
        """Workload to top a receiver up to: a multiple of W_th, but at
        least enough to keep it busy until the next scheduling round."""
        s_exe, _ = self._speeds()
        k = self.config.balance.budget_w_th_multiple
        return max(
            int(k * self.w_th()),
            int(self.config.comm.i_state_cycles * s_exe),
        )

    def _run_load_balancing(self) -> None:
        loads = self.child_loads()
        w_th = self.w_th()
        if self.config.balance.fine_grained:
            # Endgame guard (data-transfer awareness, Section VI-C): when
            # the whole rank's remaining work is within a transfer-time of
            # draining anyway, migrating it can only add traffic -- "it
            # may be better to not schedule out tasks".
            total = sum(l.corrected_workload for l in loads)
            if total < w_th * max(1, len(loads)):
                return
        plans = self.policy.plan(loads, w_th, self.receiver_target())
        for plan in plans:
            self._issue_schedule(plan)

    def _issue_schedule(
        self, plan: SchedulePlan, receiver_override: Optional[int] = None
    ) -> None:
        """Step 1: SCHEDULE command carrying the budget to the giver."""
        giver = self.system.units[plan.giver]
        queue = self.pending_assign.setdefault(plan.giver, deque())
        for receiver, amount in plan.receivers:
            target = receiver_override if receiver_override is not None else receiver
            queue.append(_Assignment(target, amount, self.sim.now))
        # Encode/decode round trip models the reserved-row command path.
        encoded = self.codec.encode(BridgeOp.SCHEDULE, budget=plan.budget)
        decoded = self.codec.decode(encoded)
        self._stat_schedules.add()
        self.sim.schedule(
            COMMAND_LATENCY,
            lambda: giver.handle_schedule(decoded.budget),
        )

    def handle_schedule_from_l2(self, budget: int) -> None:
        """Level-2 asked this rank to give ``budget`` of work away."""
        if self.policy is None or budget <= 0:
            return
        loads = sorted(
            self.child_loads(), key=lambda l: -l.queue_workload
        )
        remaining = budget
        for load in loads:
            if remaining <= 0 or load.queue_workload <= 0:
                break
            amount = min(remaining, load.queue_workload)
            plan = SchedulePlan(
                giver=load.child_id, budget=amount,
                receivers=[(UP, amount)],
            )
            self._issue_schedule(plan)
            remaining -= amount

    def assign_incoming_bundle(self, msg: DataMessage) -> int:
        """Level-2 handed us a cross-rank bundle: pick the receiver unit."""
        candidates = [
            (s.queue_workload + self.to_arrive(uid), uid)
            for uid, s in self.last_snapshot.items()
        ]
        if not candidates:
            receiver = self.units[0].unit_id
        else:
            receiver = min(candidates)[1]
        self._record_assignment(msg, receiver)
        return receiver

    def _record_assignment(self, msg: DataMessage, receiver: int) -> None:
        if receiver == msg.home_unit:
            # A lend back to its own home is a routing contradiction
            # (isLent says "gone", the entry says "here"); redirect.
            receiver = self._fallback_receiver(msg.home_unit)
        msg.dst_unit = receiver
        msg.lb_pending = False
        self._stat_sram.add()
        # Commit the home unit's isLent bit together with our entry so the
        # metadata transition is atomic for routing purposes.
        self.system.units[msg.home_unit].commit_lend(msg.block_id)
        victim = self.borrowed.insert(msg.block_id, receiver, msg.home_unit)
        if victim is not None:
            # The table lost track of a borrowed block; recall it home so
            # routing stays sound (inclusive two-level tables, Sec. VI-B).
            holder = self.system.units[victim.value]
            holder.recall_block(victim.block_id)
        self.inflight_to[receiver] = (
            self.inflight_to.get(receiver, 0) + msg.bundle_workload
        )
        if msg.block_id in self.pending_recall_blocks:
            # An upper-level recall raced past this lend; forward the
            # recall to the receiver, which will return the block on
            # delivery.
            self.pending_recall_blocks.discard(msg.block_id)
            self.system.units[receiver].recall_block(msg.block_id)
        # Tasks that bounced off the home unit during the metadata-update
        # window are parked there; now that the borrow entry exists they
        # can be re-routed to the receiver.
        home = self.system.units[msg.home_unit]
        if home.parked:
            home.retry_parked()

    def _expire_assignments(self) -> None:
        horizon = self.sim.now - 2 * self.config.comm.i_state_cycles
        for queue in self.pending_assign.values():
            while queue and queue[0].issued_at < horizon:
                queue.popleft()

    # ------------------------------------------------------------------
    # message rounds (GATHER + SCATTER)
    # ------------------------------------------------------------------
    def notify_enqueue(self, unit: NDPUnit) -> None:
        self._mail_pending.add(unit.unit_id)
        if unit.mailbox.used_bytes >= self.config.comm.g_xfer_bytes:
            self._maybe_start_round()

    def _internal_pending(self) -> bool:
        return self._backup_bytes > 0 or bool(self._scatter_pending)

    def _gather_paused(self) -> bool:
        """Gathering pauses while the backup buffer is nearly full
        (Section V-A backpressure)."""
        return (
            self.backup_capacity - self._backup_bytes
            < 4 * self.config.comm.g_xfer_bytes
        )

    def _maybe_start_round(self) -> None:
        if self._finished() or self._round_active:
            return
        if self._gather_paused():
            # Mailbox pressure cannot be served; only internal draining
            # can make progress.
            lens = []
        else:
            lens = [
                self.system.units[uid].mailbox.used_bytes
                for uid in sorted(self._mail_pending)
            ]
        any_idle = any(
            s.idle or s.queue_workload == 0
            for s in self.last_snapshot.values()
        ) or not self.last_snapshot
        if self.trigger.should_start_round(
            self.sim.now, self.last_round_end, self.i_min,
            lens, any_idle, self._internal_pending(),
        ):
            self._start_round()
            return
        if self.trigger.gathers_empty_children():
            # Fixed modes re-arm themselves for the next interval.
            interval = self.i_min * (
                2 if self.trigger.config.trigger_mode.value == "fixed_2x" else 1
            )
            self._schedule_recheck(self.last_round_end + interval)
        elif self._internal_pending() or any(lens):
            # Dynamic mode with traffic waiting but I_min not yet elapsed:
            # wake up once the interval passes instead of waiting for the
            # next state round.
            self._schedule_recheck(self.last_round_end + self.i_min)

    def _schedule_recheck(self, target: int) -> None:
        if self._recheck_scheduled:
            return
        self._recheck_scheduled = True
        delay = max(1, target - self.sim.now)

        def recheck() -> None:
            self._recheck_scheduled = False
            self._maybe_start_round()

        self.sim.schedule(delay, recheck)

    def _start_round(self) -> None:
        self._round_active = True
        self._stat_rounds.add()
        self._drain_backup()
        cfg = self.config
        topo = cfg.topology
        g_xfer = cfg.comm.g_xfer_bytes
        t0 = self.sim.now
        max_finish = t0
        gather_blindly = self.trigger.gathers_empty_children()
        paused = self._gather_paused()

        # -- gather phase ------------------------------------------------
        max_chunks = cfg.comm.max_chunks_per_round
        if not paused:
            if gather_blindly:
                gather_ids = [u.unit_id for u in self.units]
            else:
                gather_ids = sorted(self._mail_pending)
            for uid in gather_ids:
                unit = self.system.units[uid]
                link = self._link_of(uid)
                used = unit.mailbox.used_bytes
                if used == 0 and not gather_blindly:
                    self._mail_pending.discard(uid)
                    continue
                chunks = min(max_chunks, max(1, -(-used // g_xfer)))
                nbytes = chunks * g_xfer
                start = max(t0, link.busy_until)
                acc = unit.bank.access(
                    start, MAILBOX_REGION_OFFSET, nbytes,
                    is_write=False,
                    bytes_per_cycle=link.bytes_per_cycle,
                    from_bridge=True,
                )
                link.occupy_until(acc.finish, nbytes)
                if used == 0:
                    self._stat_wasted_gathers.add()
                    continue
                msgs, _ = unit.mailbox.fetch(nbytes)
                if unit.mailbox.is_empty():
                    self._mail_pending.discard(uid)
                finish = acc.finish
                self.sim.schedule_at(
                    finish,
                    lambda u=unit, m=msgs: self._gathered(u, m),
                )
                max_finish = max(max_finish, finish)

        # -- scatter phase -------------------------------------------------
        for uid in sorted(self._scatter_pending):
            unit = self.system.units[uid]
            link = self._link_of(uid)
            buf = self.scatter_buffers[uid]
            if buf.is_empty():
                self._scatter_pending.discard(uid)
                continue
            msgs = buf.pop_up_to(max_chunks * g_xfer)
            if buf.is_empty():
                self._scatter_pending.discard(uid)
            nbytes = sum(m.wire_bytes for m in msgs)
            start = max(t0, link.busy_until)
            acc = unit.bank.access(
                start, SCATTER_REGION_OFFSET, nbytes,
                is_write=True,
                bytes_per_cycle=link.bytes_per_cycle,
                from_bridge=True,
            )
            link.occupy_until(acc.finish, nbytes)
            self.sim.schedule_at(
                acc.finish,
                lambda u=unit, m=msgs: self._deliver(u, m),
            )
            max_finish = max(max_finish, acc.finish)

        if max_finish == t0:
            # Nothing could move (e.g. gather paused with empty scatter
            # buffers).  Back off instead of spinning on empty rounds.
            self._round_active = False
            self.last_round_end = self.sim.now
            self._schedule_recheck(self.sim.now + self.i_min)
            return
        duration = max(max_finish - t0, 1)
        self.last_round_duration = duration
        self.sim.schedule_at(max_finish, self._round_done)

    def _round_done(self) -> None:
        self._round_active = False
        self.last_round_end = self.sim.now
        self._maybe_start_round()

    def _gathered(self, unit: NDPUnit, msgs: Sequence[Message]) -> None:
        unit.on_mailbox_drained()
        self._route_messages(msgs)

    def _deliver(self, unit: NDPUnit, msgs: Sequence[Message]) -> None:
        for msg in msgs:
            if isinstance(msg, DataMessage):
                unit.deliver_data_message(msg)
            elif isinstance(msg, TaskMessage):
                if msg.lb_assigned:
                    # Workload correction (Section VI-C): the pending
                    # budget is released as the *work* lands, not when the
                    # data block's message arrives -- otherwise the
                    # receiver looks idle again while its task train is
                    # still in flight and the policy keeps over-stealing.
                    self.inflight_to[unit.unit_id] = max(
                        0,
                        self.inflight_to.get(unit.unit_id, 0)
                        - msg.task.workload_estimate,
                    )
                unit.deliver_task_message(msg)
        self._maybe_start_round()

    # ------------------------------------------------------------------
    # the message router
    # ------------------------------------------------------------------
    def _route_messages(self, msgs: Sequence[Message]) -> None:
        for msg in msgs:
            self._route_one(msg)

    def _route_one(self, msg: Message) -> None:
        if isinstance(msg, DataMessage):
            self._route_data(msg)
        else:
            self._route_task(msg)

    def _route_data(self, msg: DataMessage) -> None:
        if msg.returning:
            self._stat_sram.add()
            self.borrowed.remove(msg.block_id)
            self.up_blocks.discard(msg.block_id)
            self._route_to(msg, msg.dst_unit)
            return
        if msg.lb_pending:
            assignment = self._pop_assignment(msg.src_unit, msg.bundle_workload)
            if assignment is None:
                receiver = self._fallback_receiver(msg.src_unit)
            elif assignment.receiver == UP:
                # The bundle leaves the rank; the home bitmap commits now
                # and the level-2 bridge will hold the location entry.
                self.system.units[msg.home_unit].commit_lend(msg.block_id)
                self.up_blocks.add(msg.block_id)
                self._route_to(msg, UP)
                return
            else:
                receiver = assignment.receiver
            self._record_assignment(msg, receiver)
            self._route_to(msg, receiver)
            return
        self._route_to(msg, msg.dst_unit)

    def _route_task(self, msg: TaskMessage) -> None:
        block = msg.task.data_addr // self.config.comm.g_xfer_bytes
        self._stat_sram.add()
        entry = self.borrowed.lookup(block)
        if entry is not None:
            self._route_to(msg, entry.value)
            return
        if msg.lb_assigned and block in self.up_blocks:
            self._route_to(msg, UP)
            return
        home = self.system.addr_map.unit_of_block(block)
        if msg.bounces > 0 and home in self._unit_ids:
            # The home unit asserted the block is elsewhere and we have no
            # entry: the block lives in (or is returning from) another
            # rank.  Send upward if an upper level exists.
            if self.system.has_level2:
                self._route_to(msg, UP)
                return
        self._route_to(msg, home)

    def _pop_assignment(
        self, giver: int, bundle_workload: int
    ) -> Optional[_Assignment]:
        queue = self.pending_assign.get(giver)
        if not queue:
            return None
        assignment = queue[0]
        # The bundle consumes budget from the head assignment; the slot is
        # retired once its planned amount is satisfied.
        assignment.remaining -= max(1, bundle_workload)
        if assignment.remaining <= 0:
            queue.popleft()
        return assignment

    def _fallback_receiver(self, giver: int) -> int:
        candidates = [
            (s.queue_workload + self.to_arrive(uid), uid)
            for uid, s in self.last_snapshot.items()
            if uid != giver
        ]
        if not candidates:
            # No snapshot yet: any unit but the giver (a self-lend would
            # make the home bounce its own tasks forever).
            for unit in self.units:
                if unit.unit_id != giver:
                    return unit.unit_id
            return giver
        return min(candidates)[1]

    def _route_to(self, msg: Message, dst: int) -> None:
        if dst == UP:
            self._stat_routed_up.add()
            if UP in self._backup or not self.up_mailbox.push(msg):
                self._overflow(msg, UP)
            if self.on_up_push is not None:
                self.on_up_push()
            return
        msg.dst_unit = dst
        if dst in self._unit_ids:
            self._stat_routed_local.add()
            # FIFO per destination: once a message for ``dst`` waits in the
            # backup buffer, everything behind it must queue there too --
            # otherwise a full scatter buffer can starve an overflowed data
            # message behind a churn of task messages forever.
            if dst in self._backup or not self.scatter_buffers[dst].push(msg):
                self._overflow(msg, dst)
            else:
                self._scatter_pending.add(dst)
        else:
            self._stat_routed_up.add()
            if UP in self._backup or not self.up_mailbox.push(msg):
                self._overflow(msg, UP)
            if self.on_up_push is not None:
                self.on_up_push()

    def _overflow(self, msg: Message, route_key: int) -> None:
        """Destination buffer full: fall back to the shared backup buffer."""
        if self._backup_bytes + msg.wire_bytes > self.backup_capacity:
            # Soft overflow: real hardware pauses gathering before this
            # point; we count the event and carry on to stay deadlock-free.
            self._stat_backup_overflow.add()
        self._backup.setdefault(route_key, deque()).append(msg)
        self._backup_bytes += msg.wire_bytes

    @property
    def backup_used_bytes(self) -> int:
        return self._backup_bytes

    def backup_messages(self) -> tuple:
        """Snapshot of backup-buffered messages (audits and tests).

        Per-destination FIFO order, destinations in sorted route-key
        order so the snapshot is deterministic.
        """
        out: List[Message] = []
        for route_key in sorted(self._backup):
            out.extend(self._backup[route_key])
        return tuple(out)

    def _drain_backup(self) -> None:
        """Retry buffered messages whose destination has space again.

        Strict FIFO per destination: a destination whose head message does
        not fit stays blocked, so ordering (data block before its tasks)
        is preserved.
        """
        if not self._backup:
            return
        emptied: List[int] = []
        for route_key, queue in self._backup.items():
            target = (
                self.up_mailbox if route_key == UP
                else self.scatter_buffers[route_key]
            )
            moved = False
            while queue and target.push(queue[0]):
                self._backup_bytes -= queue.popleft().wire_bytes
                moved = True
            if moved and route_key != UP:
                self._scatter_pending.add(route_key)
            if not queue:
                emptied.append(route_key)
        for route_key in emptied:
            del self._backup[route_key]

    # ------------------------------------------------------------------
    # level-2 interface
    # ------------------------------------------------------------------
    def aggregate_load(self) -> int:
        return sum(
            s.queue_workload for s in self.last_snapshot.values()
        ) + sum(self.inflight_to.values())

    def receive_from_l2(self, msg: Message) -> None:
        """A message scattered down by the level-2 bridge."""
        if isinstance(msg, DataMessage):
            if msg.returning:
                self.borrowed.remove(msg.block_id)
                self._route_to(msg, msg.dst_unit)
                return
            if msg.lb_pending:
                receiver = self.assign_incoming_bundle(msg)
                self._route_to(msg, receiver)
                return
            self._route_to(msg, msg.dst_unit)
            return
        if isinstance(msg, TaskMessage):
            block = msg.task.data_addr // self.config.comm.g_xfer_bytes
            entry = self.borrowed.lookup(block)
            if entry is not None:
                self._route_to(msg, entry.value)
            else:
                home = self.system.addr_map.unit_of_block(block)
                self._route_to(msg, home)
