"""Communication fabric assembly.

A *fabric* is the system's cross-unit message path.  ``build_fabric``
instantiates the one matching the configured design:

* designs B/W/O -> :class:`BridgeFabric` (level-1 bridges per rank plus a
  level-2 bridge when the system has more than one rank);
* design C -> :class:`~repro.bridge.host_path.HostForwardingFabric`;
* design R -> :class:`~repro.bridge.rowclone.RowCloneFabric`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import Design, SystemConfig
from ..messages import Message
from ..ndp.unit import NDPUnit
from ..sim import DeterministicRNG, Simulator, StatsRegistry
from .host_path import HostForwardingFabric
from .level1 import Level1Bridge
from .level2 import Level2Bridge
from .rowclone import RowCloneFabric


def subtree_partition(config: SystemConfig) -> Tuple[Tuple[int, ...], ...]:
    """The fabric's level-1 subtrees as per-rank unit-id tuples.

    This is the partition map the sharded engine splits along: each
    level-1 (rank) bridge owns one contiguous run of unit ids, and a
    shard must take whole subtrees so that every bridge lives entirely
    inside one shard (see :func:`repro.sim.plan_partition`).
    """
    topo = config.topology
    per_rank = topo.chips_per_rank * topo.banks_per_chip
    return tuple(
        tuple(range(rank * per_rank, (rank + 1) * per_rank))
        for rank in range(topo.ranks)
    )


class BridgeFabric:
    """NDPBridge hardware: hierarchical bridges along the DRAM hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        system: "object",
        rng: DeterministicRNG,
    ):
        self.sim = sim
        self.config = config
        self.system = system
        self.partition_map = subtree_partition(config)
        self.rank_bridges: List[Level1Bridge] = [
            Level1Bridge(
                sim, config, stats, system, rank,
                rng.substream(f"bridge{rank}"),
            )
            for rank in range(config.topology.ranks)
        ]
        self.level2: Optional[Level2Bridge] = None
        if config.topology.ranks > 1:
            self.level2 = Level2Bridge(
                sim, config, stats, system, self.rank_bridges,
                rng.substream("bridge_l2"),
            )
            for bridge in self.rank_bridges:
                bridge.on_up_push = self.level2.maybe_start_round

    def start(self) -> None:
        for bridge in self.rank_bridges:
            bridge.start()
        if self.level2 is not None:
            self.level2.start()

    def notify_enqueue(self, unit: NDPUnit) -> None:
        rank = self.system.addr_map.rank_of_unit(unit.unit_id)
        self.rank_bridges[rank].notify_enqueue(unit)

    def try_direct(self, unit: NDPUnit, msg: Message) -> bool:
        return False


def build_fabric(
    sim: Simulator,
    config: SystemConfig,
    stats: StatsRegistry,
    system: "object",
    rng: DeterministicRNG,
):
    """Instantiate the communication fabric for the configured design."""
    design = config.design
    if design in (Design.B, Design.W, Design.O):
        return BridgeFabric(sim, config, stats, system, rng)
    if design is Design.C:
        fabric = HostForwardingFabric(sim, config, stats, system)
        # Host forwarding has no bridges, but the same per-rank subtree
        # partition applies: each rank's units share one channel path.
        fabric.partition_map = subtree_partition(config)
        return fabric
    if design is Design.R:
        return RowCloneFabric(sim, config, stats, system)
    raise ValueError(
        f"design {design.value} does not run on the NDP system model"
    )
