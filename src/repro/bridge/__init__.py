"""Bridge hierarchy and alternative communication fabrics."""

from .fabric import BridgeFabric, build_fabric
from .host_path import HostForwardingFabric
from .level1 import Level1Bridge, UP
from .level2 import Level2Bridge
from .rowclone import RowCloneFabric
from .triggering import CommTrigger

__all__ = [
    "BridgeFabric",
    "build_fabric",
    "HostForwardingFabric",
    "Level1Bridge",
    "Level2Bridge",
    "RowCloneFabric",
    "CommTrigger",
    "UP",
]
