"""RowClone-based intra-chip communication (design R, Table II).

RowClone [70] uses the data bus shared by all banks inside one DRAM chip
to copy data bank-to-bank without leaving the chip.  Design R accelerates
messages whose source and destination banks share a chip this way; all
other messages fall back to host forwarding exactly as design C.

Model: each chip gets an internal-bus link.  A same-chip message bypasses
the mailbox entirely (RowClone is a single in-DRAM operation) and pays the
bus's fixed row-copy latency plus serialization; both banks are reserved
for the copy.  Inter-chip messages use the inherited host poll path.
No load balancing is possible (the paper notes RowClone's modifications
cannot support it).
"""

from __future__ import annotations

from typing import Dict

from ..config import SystemConfig
from ..links import Link
from ..messages import Message
from ..ndp.unit import NDPUnit
from ..sim import Simulator, StatsRegistry
from .host_path import HostForwardingFabric

#: Cycles for one RowClone bank-to-bank row copy (~100 ns at 400 MHz).
ROW_COPY_LATENCY = 40


class RowCloneFabric(HostForwardingFabric):
    """Design R: RowClone inside each chip, host forwarding across chips."""

    def __init__(self, sim: Simulator, config: SystemConfig,
                 stats: StatsRegistry, system: "object"):
        super().__init__(sim, config, stats, system)
        topo = config.topology
        self.chip_buses: Dict[tuple, Link] = {}
        for rank in range(topo.ranks):
            for chip in range(topo.chips_per_rank):
                self.chip_buses[(rank, chip)] = Link(
                    sim, stats, f"rowclone.r{rank}.c{chip}",
                    bytes_per_cycle=64.0,
                    fixed_latency=ROW_COPY_LATENCY,
                )
        self._stat_rowclone = stats.counter("rowclone", "intra_chip_copies")

    def try_direct(self, unit: NDPUnit, msg: Message) -> bool:
        """Same-chip messages ride the chip-internal bus directly."""
        dst = msg.dst_unit
        if dst is None:
            return False
        if not self.system.addr_map.same_chip(unit.unit_id, dst):
            return False
        coord = self.system.addr_map.coord_of_unit(unit.unit_id)
        rank = self.system.addr_map.rank_of_unit(unit.unit_id)
        bus = self.chip_buses[(rank, coord.chip)]
        # The copy occupies both banks (read out, write in) and the bus.
        src_acc = unit.bank.access(
            max(self.sim.now, bus.busy_until), 0, msg.wire_bytes,
            is_write=False, bytes_per_cycle=bus.bytes_per_cycle,
            from_bridge=True,
        )
        dst_unit = self.system.units[dst]
        dst_acc = dst_unit.bank.access(
            src_acc.finish, 0, msg.wire_bytes,
            is_write=True, bytes_per_cycle=bus.bytes_per_cycle,
            from_bridge=True,
        )
        finish = dst_acc.finish + ROW_COPY_LATENCY
        bus.occupy_until(finish, msg.wire_bytes)
        self._stat_rowclone.add()
        self.sim.schedule_at(
            finish, lambda u=dst_unit, m=msg: self._deliver(u, [m])
        )
        return True
