"""Level-2 bridge: cross-rank coordination (Section V-A).

Following the paper's evaluated configuration, the level-2 bridge is a
host-side software runtime: it gathers cross-rank messages from the level-1
bridges' mailbox regions over the ordinary DDR channels, routes them, and
scatters them to the destination rank.  Unlike the design-C baseline it
only handles *cross-rank* traffic -- everything intra-rank stays below the
level-1 bridges -- and it also keeps the rank-level ``dataBorrowed``
metadata and drives cross-rank load balancing when an entire rank idles.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..balance.metadata import DataBorrowedTable
from ..config import SystemConfig
from ..links import Link
from ..messages import DataMessage, Message, MessageBuffer, TaskMessage
from ..sim import DeterministicRNG, Simulator, StatsRegistry
from .level1 import Level1Bridge, UP


@dataclass
class _RankAssignment:
    receiver_rank: int
    remaining: int
    issued_at: int


class Level2Bridge:
    """Host-side bridge connecting the level-1 (rank) bridges."""

    # The fabric builds and owns the rank-bridge list; we alias it.
    _snapshot_borrowed_ = ("rank_bridges",)

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        system: "object",
        rank_bridges: List[Level1Bridge],
        rng: DeterministicRNG,
    ):
        self.sim = sim
        self.config = config
        self.system = system
        self.rank_bridges = rank_bridges
        self.rng = rng
        topo = config.topology
        scope = "bridge_l2"
        self.channel_links: List[Link] = [
            Link(sim, stats, f"{scope}.ch{c}", config.channel_bytes_per_cycle)
            for c in range(topo.channels)
        ]
        # Optional DIMM-Link-style peer-to-peer ports: one per rank,
        # bypassing the shared channels and the host's software routing.
        self.p2p_ports: Optional[List[Link]] = None
        if config.comm.inter_rank_links:
            bpc = (
                config.comm.inter_rank_link_gb_s * config.cycle_ns
            )
            self.p2p_ports = [
                Link(sim, stats, f"{scope}.p2p{r}", bpc)
                for r in range(len(rank_bridges))
            ]
        self.down_buffers: List[MessageBuffer] = [
            MessageBuffer(f"{scope}.down{r}", config.bridge.mailbox_bytes)
            for r in range(len(rank_bridges))
        ]
        self.borrowed = DataBorrowedTable(
            config.bridge.databorrowed_bytes,
            config.bridge.databorrowed_ways,
            config.balance.metadata_scale,
        )
        self.pending_assign: Dict[int, Deque[_RankAssignment]] = {}
        self.inflight_to: Dict[int, int] = {}
        # Per-round transfer budget toward one rank: the rank-level analog
        # of G_xfer scaled by the chips feeding the channel, with the same
        # multi-chunk allowance as the level-1 rounds.
        self.round_budget = (
            config.comm.g_xfer_bytes * topo.chips_per_rank
            * max(1, config.comm.max_chunks_per_round // 2)
        )
        self.i_min = self._analytic_i_min()
        self.last_round_end = 0
        self._round_active = False
        self._recheck_scheduled = False
        self.host_busy_until = 0

        self._stat_rounds = stats.counter(scope, "message_rounds")
        self._stat_state_rounds = stats.counter(scope, "state_rounds")
        self._stat_schedules = stats.counter(scope, "schedule_commands")
        self._stat_routed = stats.counter(scope, "messages_routed")
        self._stat_cross_channel = stats.counter(scope, "cross_channel_messages")

    # ------------------------------------------------------------------
    def _analytic_i_min(self) -> int:
        ranks_per_channel = self.config.topology.ranks_per_channel
        per_rank = math.ceil(
            self.round_budget / self.config.channel_bytes_per_cycle
        )
        return 2 * ranks_per_channel * per_rank

    def _finished(self) -> bool:
        return self.system.tracker.finished

    def _rank_of_unit(self, unit_id: int) -> int:
        return self.system.addr_map.rank_of_unit(unit_id)

    def _channel_of_rank(self, rank: int) -> int:
        return self.system.addr_map.channel_of_rank(rank)

    def _uplink(self, rank: int) -> Link:
        """The link carrying this rank's cross-rank traffic: its DIMM-Link
        p2p port when present, otherwise the shared memory channel."""
        if self.p2p_ports is not None:
            return self.p2p_ports[rank]
        return self.channel_links[self._channel_of_rank(rank)]

    def start(self) -> None:
        self.sim.schedule(self.config.comm.i_state_cycles, self._state_round)

    # ------------------------------------------------------------------
    # state + cross-rank load balancing
    # ------------------------------------------------------------------
    def _state_round(self) -> None:
        if self._finished():
            return
        # One 64 B state message per rank crosses each channel.
        for link in self.channel_links:
            nbytes = 64 * self.config.topology.ranks_per_channel
            link.occupy_until(
                max(self.sim.now, link.busy_until)
                + link.transfer_cycles(nbytes),
                nbytes,
            )
        self._stat_state_rounds.add()
        self._expire_assignments()
        if self.config.balance.enabled:
            self._run_load_balancing()
        self._maybe_start_round()
        self.sim.schedule(self.config.comm.i_state_cycles, self._state_round)

    def to_arrive(self, rank: int) -> int:
        pending = sum(
            a.remaining
            for q in self.pending_assign.values()
            for a in q
            if a.receiver_rank == rank
        )
        return pending + self.inflight_to.get(rank, 0)

    def _run_load_balancing(self) -> None:
        """Step 1 at rank granularity: only fully idle ranks receive."""
        idle_ranks = [
            r for r, b in enumerate(self.rank_bridges)
            if b.all_idle and self.to_arrive(r) == 0
        ]
        if not idle_ranks:
            return
        loads = [
            (b.aggregate_load(), r)
            for r, b in enumerate(self.rank_bridges)
            if not b.all_idle
        ]
        if not loads:
            return
        for receiver_rank in idle_ranks:
            giver_load, giver_rank = max(loads)
            if giver_load <= 0:
                break
            receiver_bridge = self.rank_bridges[receiver_rank]
            if self.config.balance.fine_grained:
                per_unit = (
                    receiver_bridge.receiver_target()
                    if receiver_bridge.policy else 64
                )
                budget = per_unit * len(receiver_bridge.units)
            else:
                budget = max(1, int(
                    self.config.balance.steal_fraction * giver_load
                ))
            budget = min(budget, giver_load)
            if budget <= 0:
                continue
            queue = self.pending_assign.setdefault(giver_rank, deque())
            queue.append(_RankAssignment(receiver_rank, budget, self.sim.now))
            self._stat_schedules.add()
            self.rank_bridges[giver_rank].handle_schedule_from_l2(budget)
            loads[loads.index((giver_load, giver_rank))] = (
                max(0, giver_load - budget), giver_rank
            )

    def _expire_assignments(self) -> None:
        horizon = self.sim.now - 4 * self.config.comm.i_state_cycles
        for queue in self.pending_assign.values():
            while queue and queue[0].issued_at < horizon:
                queue.popleft()

    # ------------------------------------------------------------------
    # message rounds over the channels
    # ------------------------------------------------------------------
    def maybe_start_round(self) -> None:
        if self._finished() or self._round_active:
            return
        self._maybe_start_round()

    def _maybe_start_round(self) -> None:
        if self._round_active:
            return
        up_lens = [b.up_mailbox.used_bytes for b in self.rank_bridges]
        down_pending = any(not b.is_empty() for b in self.down_buffers)
        if not any(up_lens) and not down_pending:
            return
        elapsed = self.sim.now - self.last_round_end
        if (
            any(l >= self.round_budget for l in up_lens)
            or down_pending
            or elapsed >= self.i_min
        ):
            self._start_round()
            return
        # Traffic is waiting but I_min has not elapsed: wake up then.
        if not self._recheck_scheduled:
            self._recheck_scheduled = True
            delay = max(1, self.last_round_end + self.i_min - self.sim.now)

            def recheck() -> None:
                self._recheck_scheduled = False
                self._maybe_start_round()

            self.sim.schedule(delay, recheck)

    def _start_round(self) -> None:
        self._round_active = True
        self._stat_rounds.add()
        t0 = self.sim.now
        max_finish = t0
        overhead = self.config.comm.l2_per_message_overhead_cycles

        # -- gather from each rank's up mailbox ---------------------------
        for rank, bridge in enumerate(self.rank_bridges):
            if bridge.up_mailbox.is_empty():
                continue
            link = self._uplink(rank)
            msgs = bridge.up_mailbox.pop_up_to(self.round_budget)
            nbytes = sum(m.wire_bytes for m in msgs)
            finish = link.transfer(max(t0, link.busy_until), nbytes)
            if self.p2p_ports is None:
                # Host software routes each message (the paper's level-2
                # is a host runtime); serialize on the host core.
                proc_start = max(finish, self.host_busy_until)
                proc_finish = proc_start + overhead * len(msgs)
                self.host_busy_until = proc_finish
            else:
                # Hardware p2p routing: a couple of cycles of port logic.
                proc_finish = finish + 2
            self.sim.schedule_at(
                proc_finish, lambda m=msgs: self._route_messages(m)
            )
            max_finish = max(max_finish, proc_finish)

        # -- scatter toward each rank --------------------------------------
        for rank, bridge in enumerate(self.rank_bridges):
            buf = self.down_buffers[rank]
            if buf.is_empty():
                continue
            link = self._uplink(rank)
            msgs = buf.pop_up_to(self.round_budget)
            nbytes = sum(m.wire_bytes for m in msgs)
            finish = link.transfer(max(t0, link.busy_until), nbytes)
            self.sim.schedule_at(
                finish, lambda b=bridge, m=msgs, r=rank: self._deliver(b, r, m)
            )
            max_finish = max(max_finish, finish)

        self.sim.schedule_at(max(max_finish, t0 + 1), self._round_done)

    def _round_done(self) -> None:
        self._round_active = False
        self.last_round_end = self.sim.now
        self._maybe_start_round()

    def _deliver(
        self, bridge: Level1Bridge, rank: int, msgs: Sequence[Message]
    ) -> None:
        for msg in msgs:
            if isinstance(msg, DataMessage) and not msg.returning:
                self.inflight_to[rank] = max(
                    0, self.inflight_to.get(rank, 0) - msg.bundle_workload
                )
            bridge.receive_from_l2(msg)
        self._maybe_start_round()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route_messages(self, msgs: Sequence[Message]) -> None:
        for msg in msgs:
            self._route_one(msg)
        self._maybe_start_round()

    def _route_one(self, msg: Message) -> None:
        self._stat_routed.add()
        if isinstance(msg, DataMessage):
            if msg.returning:
                self.borrowed.remove(msg.block_id)
                self._push_down(msg, self._rank_of_unit(msg.dst_unit))
                return
            if msg.lb_pending:
                rank = self._assign_rank(msg)
                self._push_down(msg, rank)
                return
            self._push_down(msg, self._rank_of_unit(msg.dst_unit))
            return
        if isinstance(msg, TaskMessage):
            block = msg.task.data_addr // self.config.comm.g_xfer_bytes
            entry = self.borrowed.lookup(block)
            if entry is not None:
                self._push_down(msg, entry.value)
                return
            home = self.system.addr_map.unit_of_block(block)
            self._push_down(msg, self._rank_of_unit(home))

    def _assign_rank(self, msg: DataMessage) -> int:
        giver_rank = self._rank_of_unit(msg.src_unit)
        queue = self.pending_assign.get(giver_rank)
        if queue:
            assignment = queue[0]
            assignment.remaining -= max(1, msg.bundle_workload)
            if assignment.remaining <= 0:
                queue.popleft()
            rank = assignment.receiver_rank
        else:
            # Assignment expired: pick the least-loaded other rank.
            loads = [
                (b.aggregate_load() + self.to_arrive(r), r)
                for r, b in enumerate(self.rank_bridges)
                if r != giver_rank
            ]
            rank = min(loads)[1] if loads else giver_rank
        victim = self.borrowed.insert(
            msg.block_id, rank, msg.home_unit
        )
        if victim is not None:
            self._recall_from_rank(victim.value, victim.block_id)
        self.inflight_to[rank] = (
            self.inflight_to.get(rank, 0) + msg.bundle_workload
        )
        if self._channel_of_rank(rank) != self._channel_of_rank(giver_rank):
            self._stat_cross_channel.add()
        return rank

    def _recall_from_rank(self, rank: int, block_id: int) -> None:
        bridge = self.rank_bridges[rank]
        entry = bridge.borrowed.lookup(block_id)
        if entry is not None:
            self.system.units[entry.value].recall_block(block_id)
        else:
            # The lend has not reached the rank bridge yet; it will
            # forward the recall once it assigns the bundle.
            bridge.pending_recall_blocks.add(block_id)

    def _push_down(self, msg: Message, rank: int) -> None:
        buf = self.down_buffers[rank]
        if not buf.push(msg):
            # Soft overflow, mirroring the level-1 backup behaviour.
            buf.force_push(msg)
