"""Triangle counting (``tc``) -- graph mining (paper intro: [9], [18]).

The classic push formulation: every vertex ``u`` sends its (ordered)
adjacency list to each higher-id neighbor ``v``; ``v`` intersects the
received list with its own adjacency, and every common higher-id vertex
closes a triangle.  Adjacency payloads make the task messages *large*
(multiple 64 B sub-messages), exercising the framing/segmentation path
the other applications rarely touch.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.task import Task
from ..workloads.graphs import Graph, rmat_graph
from .base import NDPApplication

SEND_BASE_COST = 10
SEND_EDGE_COST = 2
INTERSECT_COST_PER_ITEM = 3


class TriangleCountApp(NDPApplication):
    name = "tc"

    def __init__(
        self,
        graph: Optional[Graph] = None,
        n_vertices: int = 1024,
        avg_degree: int = 6,
        seed: int = 1,
    ):
        super().__init__(seed)
        if graph is None:
            graph = rmat_graph(
                n_vertices, avg_degree, self.rng.substream("graph")
            ).undirected()
        self.graph = graph
        self.triangles = 0

    def _higher_neighbors(self, v: int) -> List[int]:
        return [u for u in self.graph.neighbors(v) if u > v]

    def build(self, system) -> None:
        self.triangles = 0
        self.vertices = system.partition.allocate(
            "tc_vertices", self.graph.n, element_size=256
        )
        system.registry.register("tc_send", self._send)
        system.registry.register("tc_intersect", self._intersect)

    # Phase 1: u ships its higher-id adjacency to each higher neighbor.
    def _send(self, ctx, task: Task) -> None:
        u = self.index(self.vertices, task.data_addr)
        higher = self._higher_neighbors(u)
        for v in higher:
            ctx.enqueue_task(
                "tc_intersect", task.ts,
                self.addr(self.vertices, v),
                workload=INTERSECT_COST_PER_ITEM * max(1, len(higher)),
                args=tuple(higher),    # the adjacency payload
            )

    # Phase 2 (same epoch): v intersects the payload with its own list.
    def _intersect(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        mine = set(self._higher_neighbors(v))
        self.triangles += sum(1 for w in task.args if w in mine)

    def seed_tasks(self, system) -> None:
        for u in range(self.graph.n):
            deg = len(self._higher_neighbors(u))
            system.seed_task(Task(
                func="tc_send", ts=0,
                data_addr=self.addr(self.vertices, u),
                workload=SEND_BASE_COST + SEND_EDGE_COST * deg,
                actual_cycles=SEND_BASE_COST + SEND_EDGE_COST * deg,
                read_only=True,
            ))

    def reference_triangles(self) -> int:
        count = 0
        adj = [set(self._higher_neighbors(v)) for v in range(self.graph.n)]
        for u in range(self.graph.n):
            for v in adj[u]:
                count += len(adj[u] & adj[v])
        return count

    def verify(self) -> bool:
        return self.triangles == self.reference_triangles()
