"""Breadth-first search (``bfs``).

Level-synchronous BFS in the timestamp model: visiting a vertex at level
``d`` spawns visit tasks for its unvisited neighbors at timestamp ``d+1``,
so epochs are BFS levels.  Edges that cross banks become task messages.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..runtime.task import Task
from ..workloads.graphs import Graph, rmat_graph
from .base import NDPApplication

#: Cycles to check/mark a vertex plus per-edge push cost.
VISIT_COST = 10
EDGE_COST = 4
#: A visit to an already-settled vertex is a compare-and-drop.
STALE_COST = 4

INF = float("inf")


class BfsApp(NDPApplication):
    name = "bfs"

    def __init__(
        self,
        graph: Optional[Graph] = None,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        source: int = 0,
        seed: int = 1,
        layout: str = "blocked",
    ):
        super().__init__(seed)
        if graph is None:
            graph = rmat_graph(
                n_vertices, avg_degree, self.rng.substream("graph")
            ).undirected()
        self.graph = graph
        self.source = source
        self.layout = layout
        self.dist: List[float] = []

    def build(self, system) -> None:
        self.dist = [INF] * self.graph.n
        self.vertices = system.partition.allocate(
            "bfs_vertices", self.graph.n, element_size=256,
            layout=self.layout,
        )
        system.registry.register("bfs_visit", self._visit, cost=self._visit_cost)

    def _cost(self, v: int) -> int:
        return VISIT_COST + EDGE_COST * self.graph.out_degree(v)

    def _visit_cost(self, task: Task) -> int:
        v = self.index(self.vertices, task.data_addr)
        if self.dist[v] <= task.args[0]:
            return STALE_COST
        return self._cost(v)

    def _visit(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        depth = task.args[0]
        if self.dist[v] <= depth:
            return
        self.dist[v] = depth
        for u in self.graph.neighbors(v):
            if self.dist[u] <= depth + 1:
                continue  # application-level dedup, no remote data read
            ctx.enqueue_task(
                "bfs_visit", task.ts + 1,
                self.addr(self.vertices, u),
                workload=self._cost(u), actual_cycles=self._cost(u),
                args=(depth + 1,),
            )

    def seed_tasks(self, system) -> None:
        system.seed_task(Task(
            func="bfs_visit", ts=0,
            data_addr=self.addr(self.vertices, self.source),
            workload=self._cost(self.source),
            actual_cycles=self._cost(self.source),
            args=(0,),
        ))

    def reference_distances(self) -> List[float]:
        dist = [INF] * self.graph.n
        dist[self.source] = 0
        frontier = deque([self.source])
        while frontier:
            v = frontier.popleft()
            for u in self.graph.neighbors(v):
                if dist[u] == INF:
                    dist[u] = dist[v] + 1
                    frontier.append(u)
        return dist

    def verify(self) -> bool:
        return self.dist == self.reference_distances()
