"""2-D stencil smoothing (``stencil``) -- the paper's Section IV example.

"Stencil computing can be implemented through two steps: (1) each pixel
pushes its current value (by invoking tasks) to all its neighbors; (2)
each pixel uses the received values to update its own value."  Two
bulk-synchronous timestamps per smoothing step implement exactly that
push-then-apply pattern over a row-partitioned 2-D grid; cross-bank
messages appear at partition boundaries.

An *extension* application: not part of the paper's evaluated eight, but
built on the same public API and included in the extended benchmarks.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from .base import NDPApplication

PUSH_COST = 6
RECV_COST = 3
APPLY_COST = 10


class StencilApp(NDPApplication):
    name = "stencil"

    def __init__(
        self,
        width: int = 64,
        height: int = 64,
        steps: int = 3,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.width = width
        self.height = height
        self.steps = steps
        self.values: List[float] = []
        self.acc: List[float] = []

    @property
    def n_cells(self) -> int:
        return self.width * self.height

    def _neighbors(self, i: int) -> List[int]:
        x, y = i % self.width, i // self.width
        out = []
        if x > 0:
            out.append(i - 1)
        if x < self.width - 1:
            out.append(i + 1)
        if y > 0:
            out.append(i - self.width)
        if y < self.height - 1:
            out.append(i + self.width)
        return out

    def build(self, system) -> None:
        rng = self.rng.substream("init")
        self.values = [rng.uniform(0.0, 100.0) for _ in range(self.n_cells)]
        self.acc = [0.0] * self.n_cells
        self.cells = system.partition.allocate(
            "stencil_cells", self.n_cells, element_size=64
        )
        system.registry.register("st_push", self._push)
        system.registry.register("st_recv", self._recv)
        system.registry.register("st_apply", self._apply)

    # Phase 1 (ts = 2k): push my value to the four neighbors, schedule my
    # own apply for phase 2.
    def _push(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        step = task.args[0]
        for j in self._neighbors(i):
            ctx.enqueue_task(
                "st_recv", task.ts, self.addr(self.cells, j),
                workload=RECV_COST, actual_cycles=RECV_COST,
                args=(self.values[i],),
            )
        ctx.enqueue_task(
            "st_apply", task.ts + 1, task.data_addr,
            workload=APPLY_COST, actual_cycles=APPLY_COST,
            args=(step,),
        )

    def _recv(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        self.acc[i] += task.args[0]

    # Phase 2 (ts = 2k+1): average in the received neighbor values; start
    # the next smoothing step if any remain.
    def _apply(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        step = task.args[0]
        count = 1 + len(self._neighbors(i))
        self.values[i] = (self.values[i] + self.acc[i]) / count
        self.acc[i] = 0.0
        if step + 1 < self.steps:
            ctx.enqueue_task(
                "st_push", task.ts + 1, task.data_addr,
                workload=PUSH_COST, actual_cycles=PUSH_COST,
                args=(step + 1,),
            )

    def seed_tasks(self, system) -> None:
        for i in range(self.n_cells):
            system.seed_task(Task(
                func="st_push", ts=0, data_addr=self.addr(self.cells, i),
                workload=PUSH_COST, actual_cycles=PUSH_COST, args=(0,),
            ))

    def reference(self) -> List[float]:
        rng = self.rng.substream("init")
        vals = [rng.uniform(0.0, 100.0) for _ in range(self.n_cells)]
        for _ in range(self.steps):
            prev = list(vals)
            for i in range(self.n_cells):
                neigh = self._neighbors(i)
                vals[i] = (prev[i] + sum(prev[j] for j in neigh)) / (
                    1 + len(neigh)
                )
        return vals

    def verify(self) -> bool:
        return all(
            abs(a - b) < 1e-9 for a, b in zip(self.values, self.reference())
        )
