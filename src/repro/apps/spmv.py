"""Sparse matrix-vector multiplication (``spmv``).

One task per matrix row (the Section IV example granularity).  The input
vector is replicated per unit (as HBM-PIM's BLAS layout does), so the
computation is communication-free under static assignment; power-law row
lengths create the imbalance.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from ..workloads.matrices import SparseMatrix, powerlaw_matrix
from .base import NDPApplication

#: Cycles of fixed per-row overhead plus per-nonzero multiply-accumulate.
ROW_COST = 8
NNZ_COST = 4


class SpmvApp(NDPApplication):
    name = "spmv"

    def __init__(
        self,
        n_rows: int = 4096,
        n_cols: int = 4096,
        avg_nnz: int = 8,
        skew: float = 1.0,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.avg_nnz = avg_nnz
        self.skew = skew
        self.matrix: SparseMatrix = None
        self.x: List[float] = []
        self.y: List[float] = []

    def build(self, system) -> None:
        self.matrix = powerlaw_matrix(
            self.n_rows, self.n_cols, self.avg_nnz, self.skew,
            self.rng.substream("matrix"),
        )
        x_rng = self.rng.substream("x")
        self.x = [x_rng.uniform(0.0, 1.0) for _ in range(self.n_cols)]
        self.y = [0.0] * self.n_rows
        self.rows = system.partition.allocate(
            "spmv_rows", self.n_rows, element_size=64
        )
        system.registry.register("spmv_row", self._row)

    def _row(self, ctx, task: Task) -> None:
        r = self.index(self.rows, task.data_addr)
        acc = 0.0
        for c, v in zip(self.matrix.cols[r], self.matrix.vals[r]):
            acc += v * self.x[c]
        self.y[r] = acc

    def _row_cost(self, r: int) -> int:
        return ROW_COST + NNZ_COST * self.matrix.row_nnz(r)

    def seed_tasks(self, system) -> None:
        for r in range(self.n_rows):
            cost = self._row_cost(r)
            system.seed_task(Task(
                func="spmv_row", ts=0,
                data_addr=self.addr(self.rows, r),
                workload=cost, actual_cycles=cost,
                read_only=True,
            ))

    def verify(self) -> bool:
        reference = self.matrix.multiply(self.x)
        return all(
            abs(a - b) < 1e-9 for a, b in zip(self.y, reference)
        )
