"""Tree traversal (``tree``) -- the paper's running example (Algorithm 1).

Each query starts at the root and spawns a child task wherever the next
node lives; since the BST is partitioned across banks by key range, the
upper levels of the tree constantly cross banks.  All queries enter at the
root's unit, making the root block extremely hot -- the showcase for both
bridge communication and hot-data scheduling.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from ..workloads.trees import BinaryTree, balanced_bst, random_bst
from ..workloads.zipf import ZipfGenerator, shuffled_identity
from .base import NDPApplication

#: Cycles to load a node, compare the key and pick a child pointer.
NODE_COST = 24


class TreeApp(NDPApplication):
    name = "tree"
    supports_requests = True

    def __init__(
        self,
        n_nodes: int = 4095,
        n_queries: int = 2048,
        skew: float = 0.8,
        balanced: bool = True,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.n_nodes = n_nodes
        self.n_queries = n_queries
        self.skew = skew
        self.balanced = balanced
        self.tree: BinaryTree = None
        self.queries: List[int] = []
        self.found = 0
        self.nodes_visited = 0
        self._perm: List[int] = []

    def build(self, system) -> None:
        if self.balanced:
            self.tree = balanced_bst(self.n_nodes)
        else:
            self.tree = random_bst(self.n_nodes, self.rng.substream("tree"))
        self.nodes = system.partition.allocate(
            "tree_nodes", self.n_nodes, element_size=32
        )
        system.registry.register("tree_trav", self._traverse)
        zipf = ZipfGenerator(self.n_nodes, self.skew, self.rng.substream("q"))
        self._perm = shuffled_identity(self.n_nodes, self.rng.substream("perm"))
        self.queries = [
            self._perm[zipf.sample()] for _ in range(self.n_queries)
        ]

    def _traverse(self, ctx, task: Task) -> None:
        """Direct transcription of the paper's Algorithm 1."""
        node = self.index(self.nodes, task.data_addr)
        query = task.args[0]
        self.nodes_visited += 1
        key = self.tree.keys[node]
        if key == query:
            self.found += 1
            self._request_end(task)
            return
        child = self.tree.left[node] if query < key else self.tree.right[node]
        if child != -1:
            ctx.enqueue_task(
                "tree_trav", task.ts,
                self.addr(self.nodes, child),
                workload=NODE_COST, actual_cycles=NODE_COST,
                args=task.args, read_only=True,
            )
        else:
            self._request_end(task)

    def seed_tasks(self, system) -> None:
        root_addr = self.addr(self.nodes, self.tree.root)
        for query in self.queries:
            system.seed_task(Task(
                func="tree_trav", ts=0, data_addr=root_addr,
                workload=NODE_COST, actual_cycles=NODE_COST,
                args=(query,), read_only=True,
            ))

    # -- request mode ----------------------------------------------------
    def request_keyspace(self) -> int:
        return self.n_nodes

    def make_request_task(self, rank: int, req_id: int) -> Task:
        return Task(
            func="tree_trav", ts=0,
            data_addr=self.addr(self.nodes, self.tree.root),
            workload=NODE_COST, actual_cycles=NODE_COST,
            args=(self._perm[rank], req_id), read_only=True,
        )

    def request_span(self, rank: int) -> int:
        return len(self.tree.search_path(self._perm[rank]))

    def request_visits(self) -> int:
        return self.nodes_visited

    def verify(self) -> bool:
        expected_visits = sum(
            len(self.tree.search_path(q)) for q in self.queries
        )
        # Every query key exists in the tree, so all must be found.
        return (
            self.found == len(self.queries)
            and self.nodes_visited == expected_visits
        )
