"""Application base class.

Applications are written purely against the public programming model
(Section IV): they allocate partitioned arrays, register task functions,
and seed initial tasks.  The same application object runs unmodified on
every design, including the host-only design H.

Each app also carries a *reference implementation* used by ``verify`` to
check that the simulated distributed execution computed the right answer
-- the simulator moves real application state around, so correctness bugs
in routing/balancing surface as verification failures.
"""

from __future__ import annotations

import abc
from ..runtime.partition import DataArray
from ..sim import DeterministicRNG


class NDPApplication(abc.ABC):
    """One benchmark application in the task-based model."""

    #: Short name used in reports (matches the paper's naming).
    name: str = "app"

    def __init__(self, seed: int = 1):
        self.seed = seed
        self.rng = DeterministicRNG(seed, f"app/{self.name}")
        self._system = None

    # -- lifecycle -----------------------------------------------------------
    def attach(self, system) -> None:
        """Allocate arrays, register task functions, build input data."""
        self._system = system
        self.build(system)

    @abc.abstractmethod
    def build(self, system) -> None:
        """App-specific setup (arrays + task function registration)."""

    @abc.abstractmethod
    def seed_tasks(self, system) -> None:
        """Inject the initial tasks."""

    @abc.abstractmethod
    def verify(self) -> bool:
        """Did the distributed run produce the reference answer?"""

    # -- helpers ---------------------------------------------------------
    def addr(self, arr: DataArray, index: int) -> int:
        return self._system.partition.addr_of(arr, index)

    def index(self, arr: DataArray, addr: int) -> int:
        return self._system.partition.index_of(arr, addr)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(seed={self.seed})"
