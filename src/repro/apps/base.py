"""Application base class.

Applications are written purely against the public programming model
(Section IV): they allocate partitioned arrays, register task functions,
and seed initial tasks.  The same application object runs unmodified on
every design, including the host-only design H.

Each app also carries a *reference implementation* used by ``verify`` to
check that the simulated distributed execution computed the right answer
-- the simulator moves real application state around, so correctness bugs
in routing/balancing surface as verification failures.
"""

from __future__ import annotations

import abc
from ..runtime.partition import DataArray
from ..sim import DeterministicRNG


class NDPApplication(abc.ABC):
    """One benchmark application in the task-based model."""

    #: Short name used in reports (matches the paper's naming).
    name: str = "app"

    #: Index apps override this to expose the request-mode entry point
    #: used by the open-loop driver (:mod:`repro.runtime.requests`).
    supports_requests: bool = False

    def __init__(self, seed: int = 1):
        self.seed = seed
        self.rng = DeterministicRNG(seed, f"app/{self.name}")
        self._system = None
        self._request_listener = None

    # -- lifecycle -----------------------------------------------------------
    def attach(self, system) -> None:
        """Allocate arrays, register task functions, build input data."""
        self._system = system
        self.build(system)

    @abc.abstractmethod
    def build(self, system) -> None:
        """App-specific setup (arrays + task function registration)."""

    @abc.abstractmethod
    def seed_tasks(self, system) -> None:
        """Inject the initial tasks."""

    @abc.abstractmethod
    def verify(self) -> bool:
        """Did the distributed run produce the reference answer?"""

    # -- request mode (open-loop driver) ---------------------------------
    # Closed-loop seeding stays the default; apps with
    # ``supports_requests`` additionally accept single requests injected
    # over time.  A request task carries its request id as the *last*
    # task argument, propagated unchanged down the task chain, and the
    # terminal task of the chain reports completion via
    # :meth:`_request_end`.  With no listener installed (every
    # closed-loop run) the whole path is a no-op.

    def request_keyspace(self) -> int:
        """Number of distinct Zipf ranks a request may address."""
        raise NotImplementedError(f"{self.name} has no request mode")

    def make_request_task(self, rank: int, req_id: int):
        """The seed task of one request against key ``rank``."""
        raise NotImplementedError(f"{self.name} has no request mode")

    def request_span(self, rank: int) -> int:
        """Reference task-chain length of a request against ``rank``."""
        raise NotImplementedError(f"{self.name} has no request mode")

    def request_visits(self) -> int:
        """Total chain steps executed so far (span accounting)."""
        raise NotImplementedError(f"{self.name} has no request mode")

    def set_request_listener(self, listener) -> None:
        """Install ``listener(req_id, completion_cycle)`` for chain ends."""
        self._request_listener = listener

    def shard_payload(self):
        """App-specific per-shard results merged by the open-loop driver
        (``None`` keeps the sharded payload format unchanged)."""
        return None

    def _request_end(self, task) -> None:
        """A task chain terminated; report completion in request mode."""
        if self._request_listener is not None:
            self._request_listener(task.args[-1], self._system.sim.now)

    # -- helpers ---------------------------------------------------------
    def addr(self, arr: DataArray, index: int) -> int:
        return self._system.partition.addr_of(arr, index)

    def index(self, arr: DataArray, addr: int) -> int:
        return self._system.partition.index_of(arr, addr)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(seed={self.seed})"
