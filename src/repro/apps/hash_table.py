"""Hash-table probing (``ht``).

Buckets are distributed across units with each bucket's chain local to
its home unit (layout from [30]), so lookups are communication-free under
static assignment -- a probe walks the chain as a sequence of per-node
tasks that enqueue locally.  Zipf-skewed keys concentrate probes on hot
buckets, which load balancing can migrate.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from ..workloads.zipf import ZipfGenerator
from .base import NDPApplication

#: Cycles per chain node compared during a probe.
PROBE_COST = 10

#: Chain slots allocated per bucket.
MAX_CHAIN = 64


def _hash(key: int, n_buckets: int) -> int:
    # Knuth multiplicative hash keeps hot keys spread across buckets.
    return (key * 2654435761) % (1 << 32) % n_buckets


class HashTableApp(NDPApplication):
    name = "ht"
    supports_requests = True

    def __init__(
        self,
        n_buckets: int = 4096,
        n_keys: int = 16384,
        n_queries: int = 4096,
        skew: float = 1.0,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.n_buckets = n_buckets
        self.n_keys = n_keys
        self.n_queries = n_queries
        self.skew = skew
        self.chains: List[List[int]] = []
        self.queries: List[int] = []
        self.hits = 0
        self.probes_done = 0
        self._inserted: List[int] = []

    def build(self, system) -> None:
        units = system.partition.units
        per_unit = max(1, -(-self.n_buckets // units))
        self.n_buckets = per_unit * units
        self.chains = [[] for _ in range(self.n_buckets)]
        for key in range(self.n_keys):
            chain = self.chains[_hash(key, self.n_buckets)]
            if len(chain) < MAX_CHAIN:
                chain.append(key)
        self.slots = system.partition.allocate(
            "ht_slots", self.n_buckets * MAX_CHAIN, element_size=64
        )
        system.registry.register("ht_probe", self._probe)
        self._inserted = [k for c in self.chains for k in c]
        zipf = ZipfGenerator(
            len(self._inserted), self.skew, self.rng.substream("q")
        )
        self.queries = [
            self._inserted[r] for r in zipf.sample_many(self.n_queries)
        ]

    def _slot_index(self, bucket: int, pos: int) -> int:
        return bucket * MAX_CHAIN + pos

    def _probe(self, ctx, task: Task) -> None:
        idx = self.index(self.slots, task.data_addr)
        bucket, pos = divmod(idx, MAX_CHAIN)
        key = task.args[0]
        chain = self.chains[bucket]
        self.probes_done += 1
        if pos < len(chain) and chain[pos] == key:
            self.hits += 1
            self._request_end(task)
            return
        if pos + 1 < len(chain):
            ctx.enqueue_task(
                "ht_probe", task.ts,
                self.addr(self.slots, self._slot_index(bucket, pos + 1)),
                workload=PROBE_COST, actual_cycles=PROBE_COST,
                args=task.args, read_only=True,
            )
        else:
            self._request_end(task)

    def seed_tasks(self, system) -> None:
        for key in self.queries:
            bucket = _hash(key, self.n_buckets)
            system.seed_task(Task(
                func="ht_probe", ts=0,
                data_addr=self.addr(self.slots, self._slot_index(bucket, 0)),
                workload=PROBE_COST, actual_cycles=PROBE_COST,
                args=(key,), read_only=True,
            ))

    # -- request mode ----------------------------------------------------
    def request_keyspace(self) -> int:
        return len(self._inserted)

    def make_request_task(self, rank: int, req_id: int) -> Task:
        key = self._inserted[rank]
        bucket = _hash(key, self.n_buckets)
        return Task(
            func="ht_probe", ts=0,
            data_addr=self.addr(self.slots, self._slot_index(bucket, 0)),
            workload=PROBE_COST, actual_cycles=PROBE_COST,
            args=(key, req_id), read_only=True,
        )

    def request_span(self, rank: int) -> int:
        key = self._inserted[rank]
        return self.chains[_hash(key, self.n_buckets)].index(key) + 1

    def request_visits(self) -> int:
        return self.probes_done

    def verify(self) -> bool:
        # Every queried key was inserted, so every lookup must hit, after
        # walking exactly its chain prefix.
        expected_probes = 0
        for key in self.queries:
            chain = self.chains[_hash(key, self.n_buckets)]
            expected_probes += chain.index(key) + 1
        return (
            self.hits == len(self.queries)
            and self.probes_done == expected_probes
        )
