"""Weakly connected components (``wcc``).

Asynchronous label propagation within a single epoch: every vertex starts
with its own id as label and pushes it to its neighbors; a vertex adopting
a smaller label keeps propagating.  The run quiesces when no label can
improve -- the natural fit for the bulk-synchronous tracker's termination
detection.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.task import Task
from ..workloads.graphs import Graph, rmat_graph
from .base import NDPApplication

INIT_COST = 8
UPDATE_COST = 8
EDGE_COST = 4
#: A stale update (label no longer an improvement) is a compare-and-drop.
STALE_COST = 4


class WccApp(NDPApplication):
    name = "wcc"

    def __init__(
        self,
        graph: Optional[Graph] = None,
        n_vertices: int = 4096,
        avg_degree: int = 4,
        seed: int = 1,
        layout: str = "blocked",
    ):
        super().__init__(seed)
        if graph is None:
            graph = rmat_graph(
                n_vertices, avg_degree, self.rng.substream("graph")
            ).undirected()
        self.graph = graph
        self.layout = layout
        self.labels: List[int] = []

    def build(self, system) -> None:
        self.labels = list(range(self.graph.n))
        self.vertices = system.partition.allocate(
            "wcc_vertices", self.graph.n, element_size=256,
            layout=self.layout,
        )
        system.registry.register("wcc_init", self._init)
        system.registry.register(
            "wcc_update", self._update, cost=self._update_cost
        )

    def _cost(self, v: int) -> int:
        return UPDATE_COST + EDGE_COST * self.graph.out_degree(v)

    def _update_cost(self, task: Task) -> int:
        v = self.index(self.vertices, task.data_addr)
        if self.labels[v] <= task.args[0]:
            return STALE_COST
        return self._cost(v)

    def _push(self, ctx, ts: int, v: int, label: int) -> None:
        for u in self.graph.neighbors(v):
            if self.labels[u] <= label:
                continue
            ctx.enqueue_task(
                "wcc_update", ts,
                self.addr(self.vertices, u),
                workload=self._cost(u), actual_cycles=self._cost(u),
                args=(label,),
            )

    def _init(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        self._push(ctx, task.ts, v, self.labels[v])

    def _update(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        label = task.args[0]
        if self.labels[v] <= label:
            return
        self.labels[v] = label
        self._push(ctx, task.ts, v, label)

    def seed_tasks(self, system) -> None:
        for v in range(self.graph.n):
            system.seed_task(Task(
                func="wcc_init", ts=0,
                data_addr=self.addr(self.vertices, v),
                workload=INIT_COST + EDGE_COST * self.graph.out_degree(v),
                actual_cycles=INIT_COST + EDGE_COST * self.graph.out_degree(v),
            ))

    def reference_labels(self) -> List[int]:
        """Union-find ground truth: min vertex id per component."""
        parent = list(range(self.graph.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for v in range(self.graph.n):
            for u in self.graph.neighbors(v):
                ra, rb = find(v), find(u)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
        return [find(v) for v in range(self.graph.n)]

    def verify(self) -> bool:
        return self.labels == self.reference_labels()
