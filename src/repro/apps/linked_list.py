"""Linked-list traversal (``ll``).

Each linked list is fully stored in one NDP unit (the layout the paper
cites from [30], [57]): list ``i``'s nodes occupy a contiguous slot range
in its home bank, so a traversal is a chain of per-node tasks that all
enqueue locally -- zero cross-unit communication under static assignment,
exactly as the paper reports for ll.  Zipf-distributed queries make some
lists far hotter than others; with load balancing enabled, the hot lists'
node blocks can be lent out, pipelining their traversals across units.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from ..workloads.zipf import ZipfGenerator, shuffled_identity
from .base import NDPApplication

#: Cycles to dereference and compare one list node.
NODE_COST = 12

#: Slots allocated per list (a power of two keeps lists block-aligned).
MAX_NODES = 64


class LinkedListApp(NDPApplication):
    name = "ll"
    supports_requests = True

    def __init__(
        self,
        n_lists: int = 2048,
        n_queries: int = 4096,
        skew: float = 1.0,
        min_nodes: int = 8,
        max_nodes: int = MAX_NODES,
        seed: int = 1,
    ):
        super().__init__(seed)
        if max_nodes > MAX_NODES:
            raise ValueError(f"lists are capped at {MAX_NODES} nodes")
        self.n_lists = n_lists
        self.n_queries = n_queries
        self.skew = skew
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.lengths: List[int] = []
        self.visits_done = 0
        self.queries: List[int] = []
        self._perm: List[int] = []

    def build(self, system) -> None:
        # Round the list count up so every unit holds whole lists.
        units = system.partition.units
        per_unit = max(1, -(-self.n_lists // units))
        self.n_lists = per_unit * units
        gen_rng = self.rng.substream("lengths")
        self.lengths = [
            gen_rng.randint(self.min_nodes, self.max_nodes)
            for _ in range(self.n_lists)
        ]
        self.nodes = system.partition.allocate(
            "ll_nodes", self.n_lists * MAX_NODES, element_size=64
        )
        system.registry.register("ll_visit", self._visit)
        zipf = ZipfGenerator(self.n_lists, self.skew, self.rng.substream("q"))
        self._perm = shuffled_identity(self.n_lists, self.rng.substream("perm"))
        self.queries = [
            self._perm[zipf.sample()] for _ in range(self.n_queries)
        ]

    def _node_index(self, lst: int, pos: int) -> int:
        return lst * MAX_NODES + pos

    def _visit(self, ctx, task: Task) -> None:
        idx = self.index(self.nodes, task.data_addr)
        lst, pos = divmod(idx, MAX_NODES)
        self.visits_done += 1
        if pos + 1 < self.lengths[lst]:
            ctx.enqueue_task(
                "ll_visit", task.ts,
                self.addr(self.nodes, self._node_index(lst, pos + 1)),
                workload=NODE_COST, actual_cycles=NODE_COST,
                args=task.args, read_only=True,
            )
        else:
            self._request_end(task)

    def seed_tasks(self, system) -> None:
        for lst in self.queries:
            system.seed_task(Task(
                func="ll_visit", ts=0,
                data_addr=self.addr(self.nodes, self._node_index(lst, 0)),
                workload=NODE_COST, actual_cycles=NODE_COST,
                read_only=True,
            ))

    # -- request mode ----------------------------------------------------
    def request_keyspace(self) -> int:
        return self.n_lists

    def make_request_task(self, rank: int, req_id: int) -> Task:
        lst = self._perm[rank]
        return Task(
            func="ll_visit", ts=0,
            data_addr=self.addr(self.nodes, self._node_index(lst, 0)),
            workload=NODE_COST, actual_cycles=NODE_COST,
            args=(req_id,), read_only=True,
        )

    def request_span(self, rank: int) -> int:
        return self.lengths[self._perm[rank]]

    def request_visits(self) -> int:
        return self.visits_done

    def verify(self) -> bool:
        expected = sum(self.lengths[lst] for lst in self.queries)
        return self.visits_done == expected
