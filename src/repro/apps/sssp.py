"""Single-source shortest paths (``sssp``).

Bellman-Ford-style relaxation in the timestamp model: relaxing vertex
``v`` at epoch ``t`` pushes improved tentative distances to its neighbors
at epoch ``t+1``.  Redundant relaxations (a vertex improved several times)
are exactly the irregular extra work that makes sssp the paper's most
communication-bound application.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..runtime.task import Task
from ..workloads.graphs import Graph, rmat_graph
from .base import NDPApplication

RELAX_COST = 12
EDGE_COST = 5
#: A relaxation that no longer improves the distance is a compare-drop.
STALE_COST = 4

INF = float("inf")


class SsspApp(NDPApplication):
    name = "sssp"

    def __init__(
        self,
        graph: Optional[Graph] = None,
        n_vertices: int = 4096,
        avg_degree: int = 8,
        source: int = 0,
        seed: int = 1,
        layout: str = "blocked",
    ):
        super().__init__(seed)
        if graph is None:
            graph = rmat_graph(
                n_vertices, avg_degree, self.rng.substream("graph"),
                weighted=True,
            )
        self.graph = graph
        self.source = source
        self.layout = layout
        self.dist: List[float] = []

    def build(self, system) -> None:
        self.dist = [INF] * self.graph.n
        self.vertices = system.partition.allocate(
            "sssp_vertices", self.graph.n, element_size=256,
            layout=self.layout,
        )
        system.registry.register("sssp_relax", self._relax, cost=self._relax_cost)

    def _cost(self, v: int) -> int:
        return RELAX_COST + EDGE_COST * self.graph.out_degree(v)

    def _relax_cost(self, task: Task) -> int:
        v = self.index(self.vertices, task.data_addr)
        if self.dist[v] <= task.args[0]:
            return STALE_COST
        return self._cost(v)

    def _relax(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        cand = task.args[0]
        if self.dist[v] <= cand:
            return
        self.dist[v] = cand
        for i, u in enumerate(self.graph.neighbors(v)):
            nd = cand + self.graph.weight(v, i)
            if self.dist[u] <= nd:
                continue
            ctx.enqueue_task(
                "sssp_relax", task.ts + 1,
                self.addr(self.vertices, u),
                workload=self._cost(u), actual_cycles=self._cost(u),
                args=(nd,),
            )

    def seed_tasks(self, system) -> None:
        system.seed_task(Task(
            func="sssp_relax", ts=0,
            data_addr=self.addr(self.vertices, self.source),
            workload=self._cost(self.source),
            actual_cycles=self._cost(self.source),
            args=(0,),
        ))

    def reference_distances(self) -> List[float]:
        dist = [INF] * self.graph.n
        dist[self.source] = 0
        heap = [(0, self.source)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > dist[v]:
                continue
            for i, u in enumerate(self.graph.neighbors(v)):
                nd = d + self.graph.weight(v, i)
                if nd < dist[u]:
                    dist[u] = nd
                    heapq.heappush(heap, (nd, u))
        return dist

    def verify(self) -> bool:
        return self.dist == self.reference_distances()
