"""Histogram construction (``hist``) -- an extension application.

The classic NDP reduce pattern: a stream of items is binned, and each
increment is a push task to the bin's home bank (data-centric updates, no
shared counters).  Zipf-skewed items concentrate increments on hot bins,
producing the same hub-contention profile as PageRank's accumulations --
a clean, minimal testcase for the hot-data sketch.
"""

from __future__ import annotations

from typing import List

from ..runtime.task import Task
from ..workloads.zipf import ZipfGenerator, shuffled_identity
from .base import NDPApplication

INCREMENT_COST = 6


class HistogramApp(NDPApplication):
    name = "hist"

    def __init__(
        self,
        n_bins: int = 1024,
        n_items: int = 16384,
        skew: float = 1.1,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.n_bins = n_bins
        self.n_items = n_items
        self.skew = skew
        self.counts: List[int] = []
        self.items: List[int] = []

    def build(self, system) -> None:
        self.counts = [0] * self.n_bins
        self.bins = system.partition.allocate(
            "hist_bins", self.n_bins, element_size=256
        )
        system.registry.register("hist_inc", self._increment)
        zipf = ZipfGenerator(self.n_bins, self.skew, self.rng.substream("q"))
        perm = shuffled_identity(self.n_bins, self.rng.substream("perm"))
        self.items = [perm[zipf.sample()] for _ in range(self.n_items)]

    def _increment(self, ctx, task: Task) -> None:
        b = self.index(self.bins, task.data_addr)
        self.counts[b] += 1

    def seed_tasks(self, system) -> None:
        for item in self.items:
            system.seed_task(Task(
                func="hist_inc", ts=0,
                data_addr=self.addr(self.bins, item),
                workload=INCREMENT_COST, actual_cycles=INCREMENT_COST,
            ))

    def reference(self) -> List[int]:
        counts = [0] * self.n_bins
        for item in self.items:
            counts[item] += 1
        return counts

    def verify(self) -> bool:
        return self.counts == self.reference()
