"""Hash join (``join``) -- a database workload (paper intro cites NDP
for databases [12]).

Equi-join of two relations in two bulk-synchronous phases: at ts 0 every
R tuple pushes itself to its join key's hash bucket (*build*), and at
ts 1 every S tuple probes the bucket at the same home (*probe*), counting
matches.  Both phases are pure data-centric pushes -- the bucket array is
the partitioned state, and skewed key distributions make some buckets'
banks hot in both phases.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..runtime.task import Task
from ..workloads.zipf import ZipfGenerator
from .base import NDPApplication

BUILD_COST = 8
PROBE_COST = 10
MATCH_COST = 2


def _hash(key: int, n_buckets: int) -> int:
    return (key * 2654435761) % (1 << 32) % n_buckets


class HashJoinApp(NDPApplication):
    name = "join"

    def __init__(
        self,
        n_buckets: int = 2048,
        r_rows: int = 4096,
        s_rows: int = 8192,
        n_keys: int = 1024,
        skew: float = 0.8,
        seed: int = 1,
    ):
        super().__init__(seed)
        self.n_buckets = n_buckets
        self.r_rows = r_rows
        self.s_rows = s_rows
        self.n_keys = n_keys
        self.skew = skew
        self.r_keys: List[int] = []
        self.s_keys: List[int] = []
        self.hash_table: Dict[int, List[int]] = {}
        self.matches = 0

    def build(self, system) -> None:
        units = system.partition.units
        per_unit = max(1, -(-self.n_buckets // units))
        self.n_buckets = per_unit * units
        zipf_r = ZipfGenerator(self.n_keys, self.skew,
                               self.rng.substream("r"))
        zipf_s = ZipfGenerator(self.n_keys, self.skew,
                               self.rng.substream("s"))
        self.r_keys = zipf_r.sample_many(self.r_rows)
        self.s_keys = zipf_s.sample_many(self.s_rows)
        self.hash_table = defaultdict(list)
        self.matches = 0
        self.buckets = system.partition.allocate(
            "join_buckets", self.n_buckets, element_size=256
        )
        system.registry.register("join_build", self._build_tuple)
        system.registry.register(
            "join_probe", self._probe_tuple, cost=self._probe_cost
        )

    # Phase 1 (ts = 0): insert an R tuple into its bucket's chain.
    def _build_tuple(self, ctx, task: Task) -> None:
        bucket = self.index(self.buckets, task.data_addr)
        key = task.args[0]
        self.hash_table[bucket].append(key)

    # Phase 2 (ts = 1): probe with an S tuple; count key matches.
    def _probe_tuple(self, ctx, task: Task) -> None:
        bucket = self.index(self.buckets, task.data_addr)
        key = task.args[0]
        self.matches += sum(1 for k in self.hash_table[bucket] if k == key)

    def _probe_cost(self, task: Task) -> int:
        bucket = self.index(self.buckets, task.data_addr)
        chain = self.hash_table.get(bucket, ())
        return PROBE_COST + MATCH_COST * len(chain)

    def seed_tasks(self, system) -> None:
        for key in self.r_keys:
            bucket = _hash(key, self.n_buckets)
            system.seed_task(Task(
                func="join_build", ts=0,
                data_addr=self.addr(self.buckets, bucket),
                workload=BUILD_COST, actual_cycles=BUILD_COST,
                args=(key,),
            ))
        for key in self.s_keys:
            bucket = _hash(key, self.n_buckets)
            system.seed_task(Task(
                func="join_probe", ts=1,
                data_addr=self.addr(self.buckets, bucket),
                workload=PROBE_COST, args=(key,),
            ))

    def reference_matches(self) -> int:
        from collections import Counter

        r_counts = Counter(self.r_keys)
        return sum(r_counts[k] for k in self.s_keys)

    def verify(self) -> bool:
        return self.matches == self.reference_matches()
