"""The eight evaluated applications (Section VII)."""

from typing import Dict

from .base import NDPApplication
from .bfs import BfsApp
from .hash_table import HashTableApp
from .histogram import HistogramApp
from .join import HashJoinApp
from .linked_list import LinkedListApp
from .pagerank import PageRankApp
from .spmv import SpmvApp
from .sssp import SsspApp
from .stencil import StencilApp
from .triangles import TriangleCountApp
from .tree import TreeApp
from .wcc import WccApp

#: name -> class, in the paper's presentation order.
APP_CLASSES: Dict[str, type] = {
    "ll": LinkedListApp,
    "ht": HashTableApp,
    "tree": TreeApp,
    "spmv": SpmvApp,
    "bfs": BfsApp,
    "sssp": SsspApp,
    "pr": PageRankApp,
    "wcc": WccApp,
}

#: Extension applications: built on the same API, not part of the paper's
#: evaluated eight (stencil is the paper's own Section-IV illustration).
EXTENSION_APPS: Dict[str, type] = {
    "stencil": StencilApp,
    "hist": HistogramApp,
    "join": HashJoinApp,
    "tc": TriangleCountApp,
}


def make_app(name: str, scale: float = 1.0, seed: int = 1) -> NDPApplication:
    """Build an application sized by ``scale`` (1.0 = bench default).

    Scale multiplies the dominant size knobs so benches can trade fidelity
    for runtime via a single parameter.
    """
    if name not in APP_CLASSES and name not in EXTENSION_APPS:
        raise KeyError(
            f"unknown application {name!r}; choose from "
            f"{sorted(APP_CLASSES) + sorted(EXTENSION_APPS)}"
        )

    def s(v: int, minimum: int = 1) -> int:
        return max(minimum, int(v * scale))

    if name == "ll":
        return LinkedListApp(
            n_lists=s(2048), n_queries=s(4096), seed=seed
        )
    if name == "ht":
        return HashTableApp(
            n_buckets=s(2048), n_keys=s(8192), n_queries=s(4096), seed=seed
        )
    if name == "tree":
        return TreeApp(n_nodes=s(4096) - 1, n_queries=s(2048), seed=seed)
    if name == "spmv":
        return SpmvApp(
            n_rows=s(16384), n_cols=s(16384), avg_nnz=8, skew=1.2, seed=seed
        )
    if name == "bfs":
        return BfsApp(n_vertices=_pow2(s(4096)), seed=seed)
    if name == "sssp":
        return SsspApp(n_vertices=_pow2(s(4096)), seed=seed)
    if name == "pr":
        return PageRankApp(n_vertices=_pow2(s(1024)), iterations=3, seed=seed)
    if name == "wcc":
        return WccApp(n_vertices=_pow2(s(4096)), seed=seed)
    if name == "stencil":
        side = max(8, int(64 * scale ** 0.5))
        return StencilApp(width=side, height=side, steps=3, seed=seed)
    if name == "join":
        return HashJoinApp(
            n_buckets=s(2048), r_rows=s(4096), s_rows=s(8192),
            n_keys=s(1024), seed=seed,
        )
    if name == "tc":
        return TriangleCountApp(n_vertices=_pow2(s(1024)), seed=seed)
    return HistogramApp(n_bins=s(1024), n_items=s(16384), seed=seed)


def _pow2(n: int) -> int:
    """Round up to a power of two (R-MAT requirement)."""
    p = 1
    while p < n:
        p <<= 1
    return p


__all__ = [
    "NDPApplication",
    "BfsApp",
    "HashTableApp",
    "LinkedListApp",
    "PageRankApp",
    "SpmvApp",
    "SsspApp",
    "TreeApp",
    "WccApp",
    "APP_CLASSES",
    "EXTENSION_APPS",
    "HashJoinApp",
    "HistogramApp",
    "StencilApp",
    "TriangleCountApp",
    "make_app",
]
