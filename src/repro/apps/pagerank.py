"""PageRank (``pr``).

Push-style PageRank in the stencil pattern of Section IV: at epoch ``2k``
every vertex *contributes* ``rank/out_degree`` to its neighbors (task
pushes instead of data pulls), and at epoch ``2k+1`` it *applies* the
accumulated contributions to compute the next rank.  Fixed iteration count.
"""

from __future__ import annotations

from typing import List, Optional

from ..runtime.task import Task
from ..workloads.graphs import Graph, rmat_graph
from .base import NDPApplication

CONTRIB_BASE_COST = 10
CONTRIB_EDGE_COST = 4
ADD_COST = 4
APPLY_COST = 12


class PageRankApp(NDPApplication):
    name = "pr"

    def __init__(
        self,
        graph: Optional[Graph] = None,
        n_vertices: int = 2048,
        avg_degree: int = 8,
        iterations: int = 3,
        damping: float = 0.85,
        seed: int = 1,
        layout: str = "blocked",
    ):
        super().__init__(seed)
        if graph is None:
            graph = rmat_graph(
                n_vertices, avg_degree, self.rng.substream("graph")
            )
        self.graph = graph
        self.layout = layout
        self.iterations = iterations
        self.damping = damping
        self.rank: List[float] = []
        self.acc: List[float] = []

    def build(self, system) -> None:
        n = self.graph.n
        self.rank = [1.0 / n] * n
        self.acc = [0.0] * n
        self.vertices = system.partition.allocate(
            "pr_vertices", n, element_size=256,
            layout=self.layout,
        )
        system.registry.register("pr_contribute", self._contribute)
        system.registry.register("pr_add", self._add)
        system.registry.register("pr_apply", self._apply)

    def _contribute_cost(self, v: int) -> int:
        return CONTRIB_BASE_COST + CONTRIB_EDGE_COST * self.graph.out_degree(v)

    def _contribute(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        deg = self.graph.out_degree(v)
        if deg:
            share = self.rank[v] / deg
            for u in self.graph.neighbors(v):
                ctx.enqueue_task(
                    "pr_add", task.ts,
                    self.addr(self.vertices, u),
                    workload=ADD_COST, actual_cycles=ADD_COST,
                    args=(share,),
                )
        ctx.enqueue_task(
            "pr_apply", task.ts + 1,
            self.addr(self.vertices, v),
            workload=APPLY_COST, actual_cycles=APPLY_COST,
            args=(task.args[0],),  # iteration number
        )

    def _add(self, ctx, task: Task) -> None:
        u = self.index(self.vertices, task.data_addr)
        self.acc[u] += task.args[0]

    def _apply(self, ctx, task: Task) -> None:
        v = self.index(self.vertices, task.data_addr)
        iteration = task.args[0]
        n = self.graph.n
        self.rank[v] = (1.0 - self.damping) / n + self.damping * self.acc[v]
        self.acc[v] = 0.0
        if iteration + 1 < self.iterations:
            ctx.enqueue_task(
                "pr_contribute", task.ts + 1,
                self.addr(self.vertices, v),
                workload=self._contribute_cost(v),
                actual_cycles=self._contribute_cost(v),
                args=(iteration + 1,),
            )

    def seed_tasks(self, system) -> None:
        for v in range(self.graph.n):
            system.seed_task(Task(
                func="pr_contribute", ts=0,
                data_addr=self.addr(self.vertices, v),
                workload=self._contribute_cost(v),
                actual_cycles=self._contribute_cost(v),
                args=(0,),
            ))

    def reference_ranks(self) -> List[float]:
        n = self.graph.n
        rank = [1.0 / n] * n
        for _ in range(self.iterations):
            acc = [0.0] * n
            for v in range(n):
                deg = self.graph.out_degree(v)
                if deg:
                    share = rank[v] / deg
                    for u in self.graph.neighbors(v):
                        acc[u] += share
            rank = [
                (1.0 - self.damping) / n + self.damping * acc[v]
                for v in range(n)
            ]
        return rank

    def verify(self) -> bool:
        reference = self.reference_ranks()
        return all(
            abs(a - b) < 1e-9 for a, b in zip(self.rank, reference)
        )
