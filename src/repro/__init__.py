"""NDPBridge: cross-bank coordination for near-DRAM-bank processing.

A full reproduction of Tian et al., "NDPBridge: Enabling Cross-Bank
Coordination in Near-DRAM-Bank Processing Architectures" (ISCA 2024):
a discrete-event model of a DRAM-bank NDP machine with hierarchical
hardware bridges, a task-based message-passing programming model, and
data-transfer-aware dynamic load balancing.

Quickstart::

    from repro import Design, default_config, make_app, run_app

    config = default_config(Design.O)
    result = run_app(make_app("tree", scale=0.25), config)
    print(result.metrics.makespan, result.metrics.wait_fraction)
"""

from .config import (
    Design,
    SystemConfig,
    TriggerMode,
    default_config,
    scaled_config,
    small_config,
    tiny_config,
)
from .apps import APP_CLASSES, NDPApplication, make_app
from .analysis import RunMetrics, collect_metrics
from .runtime import (
    NDPSystem,
    RunResult,
    Task,
    VerificationError,
    build_system,
    run_app,
)

__version__ = "1.0.0"

__all__ = [
    "Design",
    "SystemConfig",
    "TriggerMode",
    "default_config",
    "scaled_config",
    "small_config",
    "tiny_config",
    "APP_CLASSES",
    "NDPApplication",
    "make_app",
    "RunMetrics",
    "collect_metrics",
    "NDPSystem",
    "RunResult",
    "Task",
    "VerificationError",
    "build_system",
    "run_app",
    "__version__",
]
