"""DRAM bank timing model with an integrated access arbiter.

Each bank is a single-server resource with an open-row buffer.  Accesses
come from two masters -- the local NDP core's DMA and the upper-level
bridge's gather/scatter traffic -- and the *access arbiter* (Section V-A)
serializes them at the bank.  We model this by a busy-until horizon: an
access starts no earlier than the previous one finished, pays row timing
(tRP on a conflict + tRCD on an activation + tCAS), then streams data at
the requesting master's bandwidth.

The model follows the simplifications the paper inherits from [15]: no
refresh, closed tFAW, etc.; those affect all designs equally and do not
change relative results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from ..sim import Simulator, StatsRegistry


@dataclass(frozen=True)
class BankAccess:
    """Timing of one completed bank access."""

    start: int
    finish: int

    @property
    def latency(self) -> int:
        return self.finish - self.start


class DRAMBank:
    """One bank: row-buffer state plus a busy horizon used as the arbiter."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        unit_id: int,
    ):
        self.sim = sim
        self.config = config
        self.unit_id = unit_id
        self.busy_until = 0
        self.open_row: Optional[int] = None
        self._last_was_write = False
        self._t_wtr = config.dram.cycles(config.dram.t_wtr_ns, config.cycle_ns)
        self._refresh = config.dram.refresh_enabled
        if self._refresh:
            self._t_refi = config.dram.cycles(
                config.dram.t_refi_ns, config.cycle_ns
            )
            self._t_rfc = config.dram.cycles(
                config.dram.t_rfc_ns, config.cycle_ns
            )
            self._next_refresh = self._t_refi
        scope = f"bank{unit_id}"
        self._reads = stats.counter(scope, "reads_64bit")
        self._writes = stats.counter(scope, "writes_64bit")
        self._comm_words = stats.counter(scope, "comm_words_64bit")
        self._local_words = stats.counter(scope, "local_words_64bit")
        self._row_hits = stats.counter(scope, "row_hits")
        self._row_misses = stats.counter(scope, "row_misses")
        self._core_accesses = stats.counter(scope, "core_accesses")
        self._bridge_accesses = stats.counter(scope, "bridge_accesses")
        self._busy_cycles = stats.counter(scope, "busy_cycles")

    def row_of(self, addr: int) -> int:
        return addr // self.config.dram.row_bytes

    def access(
        self,
        now: int,
        addr: int,
        nbytes: int,
        is_write: bool,
        bytes_per_cycle: float,
        from_bridge: bool = False,
    ) -> BankAccess:
        """Reserve the bank for one access and return its timing.

        ``bytes_per_cycle`` is the data-path bandwidth of the requesting
        master (the core's DMA or the chip's DQ slice toward the bridge).
        """
        if nbytes <= 0:
            raise ValueError("access size must be positive")
        start = max(now, self.busy_until)
        if self._refresh and start >= self._next_refresh:
            # The bank was (or would be) taken by an all-bank refresh;
            # the access waits out tRFC.
            missed = 1 + (start - self._next_refresh) // self._t_refi
            self._next_refresh += missed * self._t_refi
            start += self._t_rfc
            self.open_row = None
        row = self.row_of(addr)
        latency = 0
        if self._last_was_write and not is_write:
            latency += self._t_wtr
        self._last_was_write = is_write
        if self.open_row != row:
            if self.open_row is not None:
                latency += self.config.t_rp_cycles
            latency += self.config.t_rcd_cycles
            self.open_row = row
            self._row_misses.add()
        else:
            self._row_hits.add()
        latency += self.config.t_cas_cycles
        latency += max(1, math.ceil(nbytes / bytes_per_cycle))
        finish = start + latency
        self.busy_until = finish
        self._busy_cycles.add(latency)

        words = max(1, math.ceil(nbytes / 8))
        if is_write:
            self._writes.add(words)
        else:
            self._reads.add(words)
        if from_bridge:
            self._bridge_accesses.add()
            self._comm_words.add(words)
        else:
            self._core_accesses.add()
            self._local_words.add(words)
        return BankAccess(start=start, finish=finish)

    # convenience views for energy accounting ------------------------------
    @property
    def total_reads_64bit(self) -> int:
        return self._reads.value

    @property
    def total_writes_64bit(self) -> int:
        return self._writes.value
