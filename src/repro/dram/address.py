"""Physical address mapping across the DRAM hierarchy.

Data-local execution (Section II-B) means every NDP unit owns a contiguous
slice of the physical address space: the 64 MB of its bank.  The mapper
converts between flat byte addresses, unit ids, and hierarchical
(channel, rank, chip, bank) coordinates, and chunks addresses into
``G_xfer``-sized blocks -- the granularity of message transfer and of load
balancing (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config import SystemConfig, TopologyConfig


@dataclass(frozen=True)
class UnitCoord:
    """Hierarchical coordinates of an NDP unit (one per bank)."""

    channel: int
    rank: int        # rank index within its channel
    chip: int
    bank: int        # bank index within its chip

    @property
    def global_rank(self) -> Tuple[int, int]:
        return (self.channel, self.rank)


class AddressMap:
    """Bidirectional mapping between addresses, units and coordinates."""

    def __init__(self, config: SystemConfig):
        self.topology: TopologyConfig = config.topology
        self.bank_bytes = self.topology.bank_capacity_mb * 1024 * 1024
        self.block_bytes = config.comm.g_xfer_bytes
        self.total_units = self.topology.total_units
        self.total_bytes = self.total_units * self.bank_bytes

    # -- unit id <-> coordinates ------------------------------------------
    def coord_of_unit(self, unit_id: int) -> UnitCoord:
        if not 0 <= unit_id < self.total_units:
            raise ValueError(f"unit id {unit_id} out of range")
        t = self.topology
        bank = unit_id % t.banks_per_chip
        rest = unit_id // t.banks_per_chip
        chip = rest % t.chips_per_rank
        rest //= t.chips_per_rank
        rank = rest % t.ranks_per_channel
        channel = rest // t.ranks_per_channel
        return UnitCoord(channel=channel, rank=rank, chip=chip, bank=bank)

    def unit_of_coord(self, coord: UnitCoord) -> int:
        t = self.topology
        return (
            ((coord.channel * t.ranks_per_channel + coord.rank)
             * t.chips_per_rank + coord.chip)
            * t.banks_per_chip + coord.bank
        )

    def rank_of_unit(self, unit_id: int) -> int:
        """Global rank index (0 .. ranks-1) of a unit."""
        return unit_id // self.topology.banks_per_rank

    def units_in_rank(self, global_rank: int) -> range:
        per = self.topology.banks_per_rank
        return range(global_rank * per, (global_rank + 1) * per)

    def channel_of_rank(self, global_rank: int) -> int:
        return global_rank // self.topology.ranks_per_channel

    # -- byte addresses ----------------------------------------------------
    def unit_of_addr(self, addr: int) -> int:
        if not 0 <= addr < self.total_bytes:
            raise ValueError(f"address {addr:#x} out of range")
        return addr // self.bank_bytes

    def bank_offset(self, addr: int) -> int:
        return addr % self.bank_bytes

    def block_of_addr(self, addr: int) -> int:
        """Global block id of the G_xfer-sized block containing ``addr``."""
        return addr // self.block_bytes

    def block_base(self, block_id: int) -> int:
        return block_id * self.block_bytes

    def unit_of_block(self, block_id: int) -> int:
        return self.unit_of_addr(block_id * self.block_bytes)

    def same_chip(self, unit_a: int, unit_b: int) -> bool:
        """Do two units live in the same physical DRAM chip?  (RowClone.)"""
        ca, cb = self.coord_of_unit(unit_a), self.coord_of_unit(unit_b)
        return (ca.channel, ca.rank, ca.chip) == (cb.channel, cb.rank, cb.chip)

    def same_rank(self, unit_a: int, unit_b: int) -> bool:
        return self.rank_of_unit(unit_a) == self.rank_of_unit(unit_b)


class ShardAddressMap(AddressMap):
    """Address map for one shard of a partitioned system.

    The shard's components see *global* unit ids and the *global* address
    space -- ``unit_of_addr`` must resolve any address in the machine so
    a unit can discover that a task's home lies in another shard -- but
    hierarchy queries (coordinates, ranks, fabric wiring) are answered
    against the shard's own sub-topology, rebased so that the shard's
    first unit is local unit 0 of local rank 0.

    Passing a remote unit id to a local-facing query raises ``ValueError``
    loudly: a bridge or unit holding a reference to a unit outside its
    shard is a partitioning bug, never valid routing.
    """

    def __init__(
        self,
        sub_config: SystemConfig,
        global_config: SystemConfig,
        base_unit: int,
    ):
        super().__init__(sub_config)
        self.base_unit = base_unit
        self.global_total_units = global_config.topology.total_units
        self.global_total_bytes = self.global_total_units * self.bank_bytes

    def _local(self, unit_id: int) -> int:
        local = unit_id - self.base_unit
        if not 0 <= local < self.total_units:
            raise ValueError(
                f"unit {unit_id} is outside this shard "
                f"[{self.base_unit}, {self.base_unit + self.total_units})"
            )
        return local

    # -- global-facing: any address resolves to its (global) home unit --
    def unit_of_addr(self, addr: int) -> int:
        if not 0 <= addr < self.global_total_bytes:
            raise ValueError(f"address {addr:#x} out of range")
        return addr // self.bank_bytes

    # -- local-facing: rebased onto the shard's sub-topology ------------
    def coord_of_unit(self, unit_id: int) -> UnitCoord:
        return super().coord_of_unit(self._local(unit_id))

    def unit_of_coord(self, coord: UnitCoord) -> int:
        return super().unit_of_coord(coord) + self.base_unit

    def rank_of_unit(self, unit_id: int) -> int:
        """Shard-local rank index (indexes the shard's own bridge list)."""
        return self._local(unit_id) // self.topology.banks_per_rank

    def units_in_rank(self, local_rank: int) -> range:
        per = self.topology.banks_per_rank
        base = self.base_unit + local_rank * per
        return range(base, base + per)

    def same_chip(self, unit_a: int, unit_b: int) -> bool:
        ca = super().coord_of_unit(self._local(unit_a))
        cb = super().coord_of_unit(self._local(unit_b))
        return (ca.channel, ca.rank, ca.chip) == (cb.channel, cb.rank, cb.chip)

    def same_rank(self, unit_a: int, unit_b: int) -> bool:
        return self.rank_of_unit(unit_a) == self.rank_of_unit(unit_b)
