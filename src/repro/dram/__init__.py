"""DRAM hierarchy model: addressing, banks, and DDR command encoding."""

from .address import AddressMap, UnitCoord
from .bank import BankAccess, DRAMBank
from .commands import (
    BridgeOp,
    CommandCodec,
    DDRCommand,
    DecodedCommand,
    EncodedCommand,
    R_COL,
    R_ROW,
    SCHEDULE_ROW_PREFIX,
)

__all__ = [
    "AddressMap",
    "UnitCoord",
    "BankAccess",
    "DRAMBank",
    "BridgeOp",
    "CommandCodec",
    "DDRCommand",
    "DecodedCommand",
    "EncodedCommand",
    "R_COL",
    "R_ROW",
    "SCHEDULE_ROW_PREFIX",
]
