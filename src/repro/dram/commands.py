"""DDR command encoding for the bridge protocol (Section V-B).

NDPBridge deliberately reuses *existing* DDR commands on the existing C/A
links.  Its four bridge operations are encoded as ordinary commands that
target reserved row/column addresses outside the physical array range
(``R_ROW`` / ``R_COL``); the unit controller's command handler recognizes
the reserved addresses and interprets the command:

=============  =================  =========================
bridge op      underlying DDR     target
=============  =================  =========================
STATE-GATHER   ACTIVATE           R_ROW
GATHER         READ               R_COL
SCATTER        WRITE              R_COL
SCHEDULE       ACTIVATE           R_ROW prefix || budget
=============  =================  =========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class DDRCommand(enum.Enum):
    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"


class BridgeOp(enum.Enum):
    STATE_GATHER = "STATE-GATHER"
    GATHER = "GATHER"
    SCATTER = "SCATTER"
    SCHEDULE = "SCHEDULE"


# Reserved addresses outside the physical array (Section V-B).  Real DDR4
# rows/columns are < 2**17 / 2**10; anything at or above these markers is a
# bridge-reserved address.
R_ROW = 1 << 20
R_COL = 1 << 12
SCHEDULE_ROW_PREFIX = 1 << 21


@dataclass(frozen=True)
class EncodedCommand:
    """A DDR command as it appears on the C/A link."""

    ddr: DDRCommand
    row: Optional[int] = None
    col: Optional[int] = None


class CommandCodec:
    """Encode bridge operations into DDR commands and decode them back.

    Both the bridge's command generator and the unit controller's command
    handler use the same codec, so a round-trip is exact by construction --
    and is verified by tests.
    """

    @staticmethod
    def encode(op: BridgeOp, budget: int = 0) -> EncodedCommand:
        if op is BridgeOp.STATE_GATHER:
            return EncodedCommand(DDRCommand.ACTIVATE, row=R_ROW)
        if op is BridgeOp.GATHER:
            return EncodedCommand(DDRCommand.READ, col=R_COL)
        if op is BridgeOp.SCATTER:
            return EncodedCommand(DDRCommand.WRITE, col=R_COL)
        if op is BridgeOp.SCHEDULE:
            if budget < 0:
                raise ValueError("SCHEDULE budget must be non-negative")
            return EncodedCommand(
                DDRCommand.ACTIVATE, row=SCHEDULE_ROW_PREFIX | budget
            )
        raise ValueError(f"unknown bridge op {op}")

    @staticmethod
    def decode(cmd: EncodedCommand) -> "DecodedCommand":
        if cmd.ddr is DDRCommand.ACTIVATE and cmd.row is not None:
            if cmd.row & SCHEDULE_ROW_PREFIX:
                return DecodedCommand(
                    BridgeOp.SCHEDULE, budget=cmd.row & ~SCHEDULE_ROW_PREFIX
                )
            if cmd.row == R_ROW:
                return DecodedCommand(BridgeOp.STATE_GATHER)
        if cmd.ddr is DDRCommand.READ and cmd.col == R_COL:
            return DecodedCommand(BridgeOp.GATHER)
        if cmd.ddr is DDRCommand.WRITE and cmd.col == R_COL:
            return DecodedCommand(BridgeOp.SCATTER)
        return DecodedCommand(None)


@dataclass(frozen=True)
class DecodedCommand:
    """Result of the unit controller decoding a C/A command."""

    op: Optional[BridgeOp]
    budget: int = 0

    @property
    def is_bridge_command(self) -> bool:
        return self.op is not None
